//! # vq — a distributed vector database and HPC benchmarking toolkit
//!
//! `vq` is a from-scratch Rust reproduction of the system studied in
//! *"Exploring Distributed Vector Databases Performance on HPC Platforms:
//! A Study with Qdrant"* (SC'25 workshops): a stateful, sharded vector
//! database in the mold of Qdrant, together with the HPC substrate the
//! study ran on (simulated) and the full measurement harness that
//! regenerates every table and figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use vq::prelude::*;
//!
//! // A 4-worker cluster (threads), one shard per worker.
//! let collection = CollectionConfig::new(64, Distance::Cosine);
//! let cluster = Cluster::start(ClusterConfig::new(4), collection).unwrap();
//! let mut client = cluster.client();
//!
//! // Insert a few points.
//! let points: Vec<Point> = (0..256)
//!     .map(|i| {
//!         let mut v = vec![0.0f32; 64];
//!         v[(i % 64) as usize] = 1.0;
//!         Point::new(i, v)
//!     })
//!     .collect();
//! client.upsert_batch(points).unwrap();
//!
//! // Broadcast–reduce search across all workers.
//! let mut probe = vec![0.0f32; 64];
//! probe[7] = 1.0;
//! let hits = client.search(SearchRequest::new(probe, 3)).unwrap();
//! assert_eq!(hits[0].id % 64, 7);
//! cluster.shutdown();
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`vq_core`] | vectors, distance kernels, points, top-k |
//! | [`vq_index`] | HNSW / flat / IVF / PQ indexes |
//! | [`vq_storage`] | segment stores, WAL, snapshots |
//! | [`vq_collection`] | segments + optimizer = one shard's state |
//! | [`vq_net`] | network cost model, in-process + TCP transports, wire codec |
//! | [`vq_cluster`] | workers, placement, broadcast–reduce |
//! | [`vq_server`] | Qdrant-compatible REST + binary protocol serving |
//! | [`vq_client`] | live drivers + calibrated client simulations |
//! | [`vq_hpc`] | virtual time, DES engine, CPU/GPU/queue models |
//! | [`vq_obs`] | metrics registry, phase spans, flight recorder |
//! | [`vq_embed`] | embedding pipeline (orchestrator, GPU batching) |
//! | [`vq_workload`] | synthetic peS2o corpus, BV-BRC terms, recall |

#![warn(missing_docs)]

pub use vq_client;
pub use vq_cluster;
pub use vq_collection;
pub use vq_core;
pub use vq_embed;
pub use vq_hpc;
pub use vq_index;
pub use vq_net;
pub use vq_obs;
pub use vq_server;
pub use vq_storage;
pub use vq_workload;

/// The commonly-used surface of the whole stack.
pub mod prelude {
    pub use vq_client::{
        ClusterService, ExecutorKind, LiveClusterService, LiveQueryRunner, LiveUploader,
        ModeledClusterService, PipelineMode, PipelinePolicy, Plan, Runtime, VirtualClock,
        WallClock,
    };
    pub use vq_cluster::{
        Cluster, ClusterClient, ClusterConfig, Deadlines, Durability, ExecMode, HealConfig,
        Placement, SearchExec, SearchOutcome, WorkerHealth, WorkerInfo,
    };
    pub use vq_collection::{
        CollectionConfig, CollectionStats, IndexingPolicy, LocalCollection, QuantizationConfig,
        RecommendRequest, SearchParams, SearchRequest, TierKind,
    };
    pub use vq_core::{
        DataSize, Distance, Filter, Payload, PayloadValue, Point, PointId, ScoredPoint,
        VectorLayout, VqError, VqResult,
    };
    pub use vq_index::{
        rerank, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, IvfPqConfig, IvfPqIndex,
        PqCodec, PqConfig, RerankSource, SourceRerank, SqCodec, SqConfig,
    };
    pub use vq_server::{
        BinClient, ClusterBackend, Registry, RestClient, ServerConfig, VqServer,
    };
    pub use vq_storage::{FullPrecisionTier, SharedTierBackend, TierBackend, TierConfig};
    pub use vq_workload::{
        CorpusSpec, DatasetSpec, EmbeddingModel, GroundTruth, TermWorkload,
    };
}
