//! Executor ablation: the §3.2 recommendation quantified.
//!
//! Two views of "multiprocessing beats asyncio for CPU-bound ingest":
//!
//! 1. *live* — one client thread vs four against a real 4-worker cluster;
//! 2. *simulated* — the calibrated asyncio and multiprocess pipelines at
//!    1 GB scale (the criterion numbers measure how fast the DES itself
//!    runs; the interesting output is the virtual seconds, printed once).

use criterion::{criterion_group, criterion_main, Criterion};
use vq_client::{simulate_upload, ExecutorKind, InsertCostModel, LiveUploader};
use vq_cluster::{Cluster, ClusterConfig};
use vq_collection::{CollectionConfig, IndexingPolicy};
use vq_core::Distance;
use vq_workload::{CorpusSpec, DatasetSpec, EmbeddingModel};

fn bench_executor(c: &mut Criterion) {
    // Print the simulated comparison once (virtual time, not criterion's
    // wall time).
    let m = InsertCostModel::default();
    let one_gb = 96_974u64;
    let asy = simulate_upload(one_gb, 32, ExecutorKind::Asyncio { in_flight: 2 }, 4, &m);
    let multi = simulate_upload(
        one_gb,
        32,
        ExecutorKind::MultiProcess { in_flight: 2 },
        4,
        &m,
    );
    println!(
        "[virtual] 1 GB to 4 workers: asyncio {:.0} s vs multiprocess {:.0} s ({:.2}x)",
        asy.wall_secs,
        multi.wall_secs,
        asy.wall_secs / multi.wall_secs
    );

    // Live comparison at laptop scale.
    let corpus = CorpusSpec::small(3_000).seed(23);
    let model = EmbeddingModel::small(&corpus, 64);
    let d = DatasetSpec::with_vectors(corpus, model, 3_000);
    let config = CollectionConfig::new(64, Distance::Cosine)
        .max_segment_points(2048)
        .indexing(IndexingPolicy::Deferred);

    let mut group = c.benchmark_group("executor/live_upload");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("single_client", |b| {
        b.iter_with_large_drop(|| {
            let cluster = Cluster::start(ClusterConfig::new(4), config).unwrap();
            let out = LiveUploader::new(32, 1).upload(&cluster, &d).unwrap();
            cluster.shutdown();
            out
        })
    });
    group.bench_function("client_per_worker", |b| {
        b.iter_with_large_drop(|| {
            let cluster = Cluster::start(ClusterConfig::new(4), config).unwrap();
            let out = LiveUploader::new(32, 4).upload(&cluster, &d).unwrap();
            cluster.shutdown();
            out
        })
    });
    group.finish();

    // DES throughput itself (how cheap is a virtual experiment).
    let mut group = c.benchmark_group("executor/sim_speed");
    group.bench_function("table3_cell", |b| {
        b.iter(|| {
            simulate_upload(
                7_757_952,
                32,
                ExecutorKind::MultiProcess { in_flight: 2 },
                32,
                &m,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_executor
}
criterion_main!(benches);
