//! HNSW design-choice ablations: `m`, `ef_search`, and the
//! neighbor-selection heuristic (Algorithm 4 vs closest-m).
//!
//! Complements the DESIGN.md ablation list: these knobs trade build time
//! against search latency/recall, the trade-off space §2.1 describes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vq_core::Distance;
use vq_index::{DenseVectors, HnswConfig, HnswIndex};
use vq_workload::{CorpusSpec, EmbeddingModel, TermWorkload};

const N: u64 = 8_000;
const DIM: usize = 64;

fn source() -> (DenseVectors, Vec<Vec<f32>>) {
    let corpus = CorpusSpec::small(N).seed(3);
    let model = EmbeddingModel::small(&corpus, DIM);
    let mut s = DenseVectors::new(DIM);
    for i in 0..N {
        s.push(&model.embed(i, corpus.paper(i).topic));
    }
    let queries = TermWorkload::generate(&corpus, 64).query_vectors(&model);
    (s, queries)
}

fn bench_ablation(c: &mut Criterion) {
    let (s, queries) = source();

    let mut group = c.benchmark_group("hnsw/search_ef");
    let idx = HnswIndex::build(&s, Distance::Cosine, HnswConfig::default().seed(1));
    for ef in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(ef), &ef, |b, &ef| {
            b.iter(|| {
                for q in &queries {
                    idx.search(&s, q, 10, ef, None);
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hnsw/search_m");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for m in [8usize, 16, 32] {
        let idx = HnswIndex::build(&s, Distance::Cosine, HnswConfig::with_m(m).seed(2));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                for q in &queries {
                    idx.search(&s, q, 10, 64, None);
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hnsw/build_selection");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("heuristic", |b| {
        b.iter(|| {
            HnswIndex::build(
                &s,
                Distance::Cosine,
                HnswConfig::default().use_heuristic(true).seed(4),
            )
        })
    });
    group.bench_function("closest_m", |b| {
        b.iter(|| {
            HnswIndex::build(
                &s,
                Distance::Cosine,
                HnswConfig::default().use_heuristic(false).seed(4),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
