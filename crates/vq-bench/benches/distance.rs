//! Distance-kernel micro-benchmarks: the innermost loops of the system,
//! across the dimensionalities that matter (2560 = Qwen3-Embedding-4B).
//!
//! Three tiers are compared per operation:
//!
//! * `scalar` — the unrolled reference (`vq_core::simd::scalar`), what
//!   every build gets without SIMD support;
//! * `dispatched` — whatever `vq_core::simd` runtime dispatch picked
//!   (AVX2 on x86_64 with avx2+fma, NEON on aarch64, otherwise scalar —
//!   the group name embeds `vq_core::simd::backend()`);
//! * `blocked` — the one-query-vs-many-vectors form used by flat scans,
//!   reported per *scan* over a 10k-vector slab so the speedup over
//!   per-vector dispatch is directly visible.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use vq_core::distance::{cosine, dot, l1, l2_squared};
use vq_core::simd;

fn vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let a = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    (a, b)
}

fn slab(dim: usize, rows: usize) -> Vec<f32> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
    (0..dim * rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// scalar-vs-dispatched pairs at each dimension: the dispatch win.
fn bench_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("simd_tiers/{}", simd::backend()));
    for dim in [64usize, 256, 1024, 2560] {
        let (a, b) = vectors(dim);
        group.throughput(Throughput::Bytes((dim * 4 * 2) as u64));
        for (op, scalar, dispatched) in [
            (
                "dot",
                simd::scalar::dot as fn(&[f32], &[f32]) -> f32,
                simd::dot as fn(&[f32], &[f32]) -> f32,
            ),
            ("l2", simd::scalar::l2_squared, simd::l2_squared),
            ("l1", simd::scalar::l1, simd::l1),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{op}/scalar"), dim), &dim, |bch, _| {
                bch.iter(|| scalar(black_box(&a), black_box(&b)))
            });
            group.bench_with_input(
                BenchmarkId::new(format!("{op}/dispatched"), dim),
                &dim,
                |bch, _| bch.iter(|| dispatched(black_box(&a), black_box(&b))),
            );
        }
    }
    group.finish();
}

/// Full-slab scans: per-vector dispatched calls vs one blocked call, the
/// shape `FlatIndex::scan_range` actually runs.
fn bench_blocked_scan(c: &mut Criterion) {
    const ROWS: usize = 10_000;
    let mut group = c.benchmark_group("blocked_scan/10k");
    group.sample_size(20);
    for dim in [256usize, 1024] {
        let (q, _) = vectors(dim);
        let block = slab(dim, ROWS);
        let mut out = vec![0.0f32; ROWS];
        group.throughput(Throughput::Bytes((dim * ROWS * 4) as u64));
        group.bench_with_input(BenchmarkId::new("per_vector", dim), &dim, |bch, _| {
            bch.iter(|| {
                for (r, slot) in out.iter_mut().enumerate() {
                    *slot = simd::dot(black_box(&q), &block[r * dim..(r + 1) * dim]);
                }
                out[ROWS - 1]
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", dim), &dim, |bch, _| {
            bch.iter(|| {
                simd::dot_block(black_box(&q), black_box(&block), &mut out);
                out[ROWS - 1]
            })
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [64usize, 256, 1024, 2560] {
        let (a, b) = vectors(dim);
        group.throughput(Throughput::Bytes((dim * 4 * 2) as u64));
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bch, _| {
            bch.iter(|| dot(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l2_squared", dim), &dim, |bch, _| {
            bch.iter(|| l2_squared(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l1", dim), &dim, |bch, _| {
            bch.iter(|| l1(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bch, _| {
            bch.iter(|| cosine(black_box(&a), black_box(&b)))
        });
    }
    group.finish();

    // Naive (non-unrolled) baseline at the paper's dimensionality, to
    // quantify what the 8-lane unrolling buys.
    let (a, b) = vectors(2560);
    c.bench_function("distance/naive_dot/2560", |bch| {
        bch.iter(|| {
            let mut s = 0.0f32;
            for i in 0..a.len() {
                s += black_box(a[i]) * black_box(b[i]);
            }
            s
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_kernels, bench_tiers, bench_blocked_scan
}
criterion_main!(benches);
