//! Distance-kernel micro-benchmarks: the innermost loops of the system,
//! across the dimensionalities that matter (2560 = Qwen3-Embedding-4B).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use vq_core::distance::{cosine, dot, l1, l2_squared};

fn vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let a = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [64usize, 256, 1024, 2560] {
        let (a, b) = vectors(dim);
        group.throughput(Throughput::Bytes((dim * 4 * 2) as u64));
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bch, _| {
            bch.iter(|| dot(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l2_squared", dim), &dim, |bch, _| {
            bch.iter(|| l2_squared(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l1", dim), &dim, |bch, _| {
            bch.iter(|| l1(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dim), &dim, |bch, _| {
            bch.iter(|| cosine(black_box(&a), black_box(&b)))
        });
    }
    group.finish();

    // Naive (non-unrolled) baseline at the paper's dimensionality, to
    // quantify what the 8-lane unrolling buys.
    let (a, b) = vectors(2560);
    c.bench_function("distance/naive_dot/2560", |bch| {
        bch.iter(|| {
            let mut s = 0.0f32;
            for i in 0..a.len() {
                s += black_box(a[i]) * black_box(b[i]);
            }
            s
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_kernels
}
criterion_main!(benches);
