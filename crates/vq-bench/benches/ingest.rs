//! Ingest-path benchmarks: per-point reference vs columnar block, layer
//! by layer and end to end. The headline case — a 10k-point contiguous
//! batch at dim 1024 into a WAL-backed collection — is recorded in
//! `BENCH_INGEST.json` and smoke-gated in CI (`repro ingest --check`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vq_client::convert_block;
use vq_collection::{CollectionConfig, LocalCollection};
use vq_core::{Distance, Point, PointBlock};
use vq_storage::{PagedArena, SegmentStore, Wal, WalRecord};

fn points(n: u64, dim: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(i, (0..dim).map(|d| ((i as usize + d) % 97) as f32 * 0.25).collect()))
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    // The conversion stage alone: sequential from_points vs the
    // rayon-parallel client stage.
    let mut group = c.benchmark_group("ingest/convert");
    for &(n, dim) in &[(1_000u64, 1024usize), (10_000, 1024)] {
        let pts = points(n, dim);
        group.throughput(Throughput::Bytes(n * dim as u64 * 4));
        group.bench_with_input(BenchmarkId::new("sequential", n), &pts, |b, pts| {
            b.iter(|| PointBlock::from_points(pts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &pts, |b, pts| {
            b.iter(|| convert_block(pts).unwrap())
        });
    }
    group.finish();

    // Arena: per-point pushes vs one bulk slab copy.
    let mut group = c.benchmark_group("ingest/arena_10k_dim1024");
    group.sample_size(20);
    let pts = points(10_000, 1024);
    let block = convert_block(&pts).unwrap();
    group.bench_function("per_point_push", |b| {
        b.iter(|| {
            let mut arena = PagedArena::new(1024);
            for p in &pts {
                arena.push(&p.vector).unwrap();
            }
            arena
        })
    });
    group.bench_function("extend_from_slab", |b| {
        let slab = block.as_contiguous().unwrap();
        b.iter(|| {
            let mut arena = PagedArena::new(1024);
            arena.extend_from_slab(slab).unwrap();
            arena
        })
    });
    group.finish();

    // WAL: n per-point records (n syncs) vs one block record (1 sync).
    let mut group = c.benchmark_group("ingest/wal_10k_dim1024");
    group.sample_size(10);
    group.bench_function("per_point_records", |b| {
        b.iter(|| {
            let mut wal = Wal::in_memory();
            for p in &pts {
                wal.append(&WalRecord::Upsert(p.clone())).unwrap();
            }
            wal
        })
    });
    group.bench_function("block_record", |b| {
        b.iter(|| {
            let mut wal = Wal::in_memory();
            wal.append(&WalRecord::UpsertBlock(block.clone())).unwrap();
            wal
        })
    });
    group.finish();

    // Segment store: the full server-side write path for one segment.
    let mut group = c.benchmark_group("ingest/segment_10k_dim1024");
    group.sample_size(10);
    group.bench_function("per_point_upsert", |b| {
        b.iter(|| {
            let mut store = SegmentStore::new(1024);
            for p in &pts {
                store.upsert(p.clone()).unwrap();
            }
            store
        })
    });
    group.bench_function("upsert_block", |b| {
        b.iter(|| {
            let mut store = SegmentStore::new(1024);
            store.upsert_block(&block).unwrap();
            store
        })
    });
    group.finish();

    // End to end: WAL-backed collection, the BENCH_INGEST.json headline.
    let mut group = c.benchmark_group("ingest/collection_wal_10k_dim1024");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    let config = CollectionConfig::new(1024, Distance::Euclid).max_segment_points(16_384);
    group.bench_function("per_point", |b| {
        b.iter(|| {
            let coll = LocalCollection::with_wal(config, Wal::in_memory());
            coll.upsert_batch(pts.clone()).unwrap();
            coll
        })
    });
    group.bench_function("block", |b| {
        b.iter(|| {
            let coll = LocalCollection::with_wal(config, Wal::in_memory());
            coll.upsert_block(&block).unwrap();
            coll
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_ingest
}
criterion_main!(benches);
