//! Storage-path benchmarks: WAL framing throughput, arena appends,
//! segment upserts — the per-point server-side costs behind the insert
//! experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vq_core::Point;
use vq_storage::{PagedArena, SegmentStore, Wal, WalRecord};

fn point(id: u64, dim: usize) -> Point {
    Point::new(id, vec![0.25; dim])
}

fn bench_storage(c: &mut Criterion) {
    // WAL append+replay at the paper's vector size.
    let mut group = c.benchmark_group("storage/wal");
    for dim in [256usize, 2560] {
        let bytes = (dim * 4 + 16) as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::new("append", dim), &dim, |b, &dim| {
            let rec = WalRecord::Upsert(point(1, dim));
            let mut wal = Wal::in_memory();
            b.iter(|| wal.append(&rec).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("encode_decode", dim), &dim, |b, &dim| {
            let rec = WalRecord::Upsert(point(1, dim));
            b.iter(|| {
                let enc = rec.encode();
                WalRecord::decode(&enc).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("storage/replay_1k_records");
    group.sample_size(20);
    group.bench_function("dim256", |b| {
        let mut wal = Wal::in_memory();
        for i in 0..1000 {
            wal.append(&WalRecord::Upsert(point(i, 256))).unwrap();
        }
        b.iter(|| wal.replay().unwrap())
    });
    group.finish();

    // Arena append at Qwen3 dims.
    let mut group = c.benchmark_group("storage/arena_push");
    for dim in [256usize, 2560] {
        group.throughput(Throughput::Bytes((dim * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let v = vec![0.5f32; dim];
            let mut arena = PagedArena::new(dim);
            b.iter(|| arena.push(&v).unwrap())
        });
    }
    group.finish();

    // Whole-segment upsert path (arena + ids + payload).
    let mut group = c.benchmark_group("storage/segment_upsert");
    group.sample_size(20);
    group.bench_function("dim2560", |b| {
        let mut store = SegmentStore::new(2560);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            store.upsert(point(id, 2560)).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_storage
}
criterion_main!(benches);
