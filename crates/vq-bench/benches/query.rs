//! Query benchmarks — the real-engine half of Figures 4 and 5.
//!
//! Live broadcast–reduce searches against clusters of 1/2/4 workers, with
//! query batch size swept. At laptop scale the broadcast overhead visibly
//! dominates (the small-dataset regime of Figure 5, where more workers
//! *lose*).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vq_client::{LiveQueryRunner, LiveUploader};
use vq_cluster::{Cluster, ClusterConfig};
use vq_collection::CollectionConfig;
use vq_core::Distance;
use vq_workload::{CorpusSpec, DatasetSpec, EmbeddingModel, TermWorkload};

const N: u64 = 8_000;
const DIM: usize = 64;

fn dataset() -> DatasetSpec {
    let corpus = CorpusSpec::small(N).seed(13);
    let model = EmbeddingModel::small(&corpus, DIM);
    DatasetSpec::with_vectors(corpus, model, N)
}

fn loaded_cluster(workers: u32) -> Arc<Cluster> {
    let config = CollectionConfig::new(DIM, Distance::Cosine).max_segment_points(2048);
    let cluster = Cluster::start(ClusterConfig::new(workers), config).unwrap();
    let d = dataset();
    LiveUploader::new(64, workers).upload(&cluster, &d).unwrap();
    let mut client = cluster.client();
    client.build_indexes().unwrap();
    cluster
}

fn bench_query(c: &mut Criterion) {
    let d = dataset();
    let terms = TermWorkload::generate(d.corpus(), 256);
    let queries = terms.query_vectors(d.model());

    // Batch-size sweep on one worker (Figure 4's first panel).
    let single = loaded_cluster(1);
    let mut group = c.benchmark_group("query/batch_size");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for batch in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let runner = LiveQueryRunner::new(batch, 10);
            b.iter(|| runner.run(&single, &queries).unwrap())
        });
    }
    group.finish();
    single.shutdown();

    // Worker sweep at fixed batch (Figure 5's small-dataset regime).
    let mut group = c.benchmark_group("query/workers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for workers in [1u32, 2, 4] {
        let cluster = loaded_cluster(workers);
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, _| {
                let runner = LiveQueryRunner::new(16, 10);
                b.iter(|| runner.run(&cluster, &queries).unwrap())
            },
        );
        cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
