//! Embedding-pipeline benchmarks (Table 2 machinery).
//!
//! Measures the real code in the pipeline — the packing heuristic and the
//! orchestrator's discrete-event execution — since the GPU time itself is
//! a cost model. A 100-job virtual campaign simulating in ~milliseconds
//! is the property that makes the paper-scale Table 2 regeneration cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vq_embed::{BatchingHeuristic, Orchestrator, OrchestratorConfig};
use vq_hpc::{JobQueue, JobQueueConfig, NodeSpec, SimDuration};
use vq_workload::{CorpusSpec, PaperMeta};

fn bench_embed(c: &mut Criterion) {
    // The packing heuristic over realistic paper-length distributions.
    let corpus = CorpusSpec::pes2o();
    let papers: Vec<PaperMeta> = corpus.papers_in(0..20_000).collect();
    let mut group = c.benchmark_group("embed/heuristic_pack");
    for n in [1_000usize, 20_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let h = BatchingHeuristic::default();
            b.iter(|| h.pack(&papers[..n]))
        });
    }
    group.finish();

    // Whole-campaign virtual execution speed (jobs simulated per second).
    let mut group = c.benchmark_group("embed/orchestrator_campaign");
    group.sample_size(10);
    for jobs in [10u64, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let orchestrator = Orchestrator::new(
                    OrchestratorConfig::default(),
                    CorpusSpec::pes2o(),
                    NodeSpec::polaris(),
                );
                let queues = vec![JobQueue::new(JobQueueConfig {
                    max_running: 4,
                    dispatch_delay: SimDuration::from_secs(30),
                })];
                orchestrator.run(&queues, 0..jobs * 4000, None)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embed);
criterion_main!(benches);
