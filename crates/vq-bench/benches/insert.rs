//! Insertion benchmarks — the real-engine half of Figure 2 / Table 3.
//!
//! Live cluster (worker threads) upload throughput vs batch size and vs
//! client count, at laptop scale. The shapes validate what the calibrated
//! simulation extrapolates: batching amortizes per-request cost, and
//! multiple client processes scale where a single asyncio-style client
//! cannot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vq_client::LiveUploader;
use vq_cluster::{Cluster, ClusterConfig};
use vq_collection::{CollectionConfig, IndexingPolicy};
use vq_core::Distance;
use vq_workload::{CorpusSpec, DatasetSpec, EmbeddingModel};

const N: u64 = 4_000;
const DIM: usize = 64;

fn dataset() -> DatasetSpec {
    let corpus = CorpusSpec::small(N).seed(9);
    let model = EmbeddingModel::small(&corpus, DIM);
    DatasetSpec::with_vectors(corpus, model, N)
}

fn config() -> CollectionConfig {
    CollectionConfig::new(DIM, Distance::Cosine)
        .max_segment_points(2048)
        .indexing(IndexingPolicy::Deferred)
}

fn bench_insert(c: &mut Criterion) {
    let d = dataset();

    let mut group = c.benchmark_group("insert/batch_size");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for batch in [1usize, 8, 32, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_with_large_drop(|| {
                let cluster = Cluster::start(ClusterConfig::new(1), config()).unwrap();
                let out = LiveUploader::new(batch, 1).upload(&cluster, &d).unwrap();
                cluster.shutdown();
                out
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("insert/clients");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for clients in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |b, &clients| {
                b.iter_with_large_drop(|| {
                    let cluster =
                        Cluster::start(ClusterConfig::new(clients), config()).unwrap();
                    let out = LiveUploader::new(32, clients).upload(&cluster, &d).unwrap();
                    cluster.shutdown();
                    out
                })
            },
        );
    }
    group.finish();

    // Deferred vs on-seal indexing during ingest (the §3.3 bulk-upload
    // recommendation).
    let mut group = c.benchmark_group("insert/indexing_policy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for (name, policy) in [
        ("deferred", IndexingPolicy::Deferred),
        ("on_seal", IndexingPolicy::OnSeal),
    ] {
        group.bench_function(name, |b| {
            b.iter_with_large_drop(|| {
                let cfg = config().indexing(policy);
                let cluster = Cluster::start(ClusterConfig::new(1), cfg).unwrap();
                let out = LiveUploader::new(32, 1).upload(&cluster, &d).unwrap();
                if policy == IndexingPolicy::OnSeal {
                    // Let the worker finish its in-line builds via an
                    // explicit pass so the comparison is fair.
                    let mut client = cluster.client();
                    let _ = client.build_indexes();
                }
                let c2: Arc<Cluster> = cluster.clone();
                c2.shutdown();
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
