//! Index-family ablation: flat vs HNSW vs IVF vs PQ search latency on
//! identical clustered data (the index landscape of §2.1).

use criterion::{criterion_group, criterion_main, Criterion};
use vq_core::Distance;
use vq_index::{
    DenseVectors, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, PqCodec, PqConfig,
    SqCodec, SqConfig,
};
use vq_workload::{CorpusSpec, EmbeddingModel, TermWorkload};

const N: u64 = 10_000;
const DIM: usize = 64;

fn bench_family(c: &mut Criterion) {
    let corpus = CorpusSpec::small(N).seed(17);
    let model = EmbeddingModel::small(&corpus, DIM);
    let mut s = DenseVectors::new(DIM);
    for i in 0..N {
        s.push(&model.embed(i, corpus.paper(i).topic));
    }
    let queries = TermWorkload::generate(&corpus, 32).query_vectors(&model);

    let flat = FlatIndex::new(Distance::Cosine);
    let hnsw = HnswIndex::build(&s, Distance::Cosine, HnswConfig::default().seed(1));
    let ivf = IvfIndex::build(&s, Distance::Cosine, IvfConfig::with_nlist(64).seed(2));
    let pq = PqCodec::build(&s, Distance::Cosine, PqConfig::with_m(8).ks(64).seed(3));

    let mut group = c.benchmark_group("index_family/search32q");
    group.bench_function("flat_exact", |b| {
        b.iter(|| {
            for q in &queries {
                flat.search(&s, q, 10, None);
            }
        })
    });
    group.bench_function("hnsw_ef64", |b| {
        b.iter(|| {
            for q in &queries {
                hnsw.search(&s, q, 10, 64, None);
            }
        })
    });
    group.bench_function("ivf_nprobe8", |b| {
        b.iter(|| {
            for q in &queries {
                ivf.search(&s, q, 10, Some(8), None);
            }
        })
    });
    group.bench_function("pq_adc", |b| {
        b.iter(|| {
            for q in &queries {
                pq.search(q, 10, None, None);
            }
        })
    });
    let sq = SqCodec::build(&s, Distance::Cosine, SqConfig::default());
    group.bench_function("sq_int8", |b| {
        b.iter(|| {
            for q in &queries {
                sq.search::<DenseVectors>(q, 10, None, None);
            }
        })
    });
    group.bench_function("sq_int8_rescored", |b| {
        b.iter(|| {
            for q in &queries {
                sq.search(q, 10, Some(&s), None);
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_family
}
criterion_main!(benches);
