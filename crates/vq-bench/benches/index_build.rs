//! Index build benchmarks — the real-engine half of Figure 3.
//!
//! Measures HNSW construction time vs segment size (superlinear growth is
//! the mechanism the Figure-3 model extrapolates) and parallel-vs-
//! sequential construction speedup on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vq_core::Distance;
use vq_index::{DenseVectors, HnswConfig, HnswIndex, IvfConfig, IvfIndex};
use vq_workload::{CorpusSpec, EmbeddingModel};

fn source(n: u64, dim: usize) -> DenseVectors {
    let corpus = CorpusSpec::small(n.max(1)).seed(5);
    let model = EmbeddingModel::small(&corpus, dim);
    let mut s = DenseVectors::new(dim);
    for i in 0..n {
        s.push(&model.embed(i, corpus.paper(i).topic));
    }
    s
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in [1_000u64, 4_000, 16_000] {
        let s = source(n, 64);
        group.bench_with_input(BenchmarkId::new("hnsw_parallel", n), &n, |b, _| {
            b.iter(|| HnswIndex::build(&s, Distance::Cosine, HnswConfig::default().seed(1)))
        });
        if n <= 4_000 {
            group.bench_with_input(BenchmarkId::new("hnsw_sequential", n), &n, |b, _| {
                b.iter(|| {
                    HnswIndex::build_sequential(
                        &s,
                        Distance::Cosine,
                        HnswConfig::default().seed(1),
                    )
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("ivf_train", n), &n, |b, _| {
            b.iter(|| IvfIndex::build(&s, Distance::Cosine, IvfConfig::with_nlist(32).seed(2)))
        });
    }
    group.finish();

    // ef_construct ablation at fixed size.
    let s = source(4_000, 64);
    let mut group = c.benchmark_group("index_build/ef_construct");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for ef in [50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(ef), &ef, |b, &ef| {
            b.iter(|| {
                HnswIndex::build(
                    &s,
                    Distance::Cosine,
                    HnswConfig::default().ef_construct(ef).seed(3),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
