//! Quantized-resident search micro-benchmarks: SIMD PQ LUT kernels and
//! the two-stage filter-then-rerank pipeline (quantized ISSUE).
//!
//! Three angles, mirroring `BENCH_PQ.json`:
//!
//! * `lut_build` — per-query ADC table construction cost per kernel tier
//!   (`scalar` vs whatever `vq_core::simd::backend()` dispatched);
//! * `coarse_scan` — blocked LUT-gather over the packed code slab vs the
//!   full-precision flat scan it replaces, at the dimensionalities where
//!   the resident-set argument matters (512, 2560);
//! * `two_stage` — end-to-end `search_rerank` at increasing rerank
//!   depths, against the exact flat baseline, so the recall-vs-latency
//!   trade the acceptance criteria pin is visible in one group.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use vq_core::{simd, Distance};
use vq_index::{DenseVectors, FlatIndex, PqCodec, PqConfig, SourceRerank};

const ROWS: usize = 10_000;

fn source(dim: usize, rows: usize, seed: u64) -> DenseVectors {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut s = DenseVectors::new(dim);
    for _ in 0..rows {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        s.push(&v);
    }
    s
}

fn query(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Per-query LUT construction, scalar vs dispatched, per dimension.
fn bench_lut_build(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("pq_lut/build/{}", simd::backend()));
    for dim in [512usize, 2560] {
        let m = dim / 8;
        let ks = 256usize;
        let s = source(dim, 2_000, 5);
        let pq = PqCodec::build(&s, Distance::Euclid, PqConfig::with_m(m).ks(ks).seed(7));
        let q = query(dim, 11);
        let mut lut = vec![0.0f32; m * ks];
        group.throughput(Throughput::Elements((m * ks) as u64));
        group.bench_with_input(BenchmarkId::new("dispatched", dim), &dim, |b, _| {
            b.iter(|| pq.adc_table_into(black_box(&q), black_box(&mut lut)))
        });
    }
    group.finish();
}

/// Quantized coarse scan (blocked LUT-gather over the code slab) against
/// the full-precision flat scan it displaces.
fn bench_coarse_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("pq_lut/coarse_scan/{}", simd::backend()));
    for dim in [512usize, 2560] {
        let s = source(dim, ROWS, 13);
        let pq = PqCodec::build(&s, Distance::Euclid, PqConfig::with_m(dim / 8).ks(256).seed(3));
        let flat = FlatIndex::new(Distance::Euclid);
        let q = query(dim, 17);
        group.throughput(Throughput::Elements(ROWS as u64));
        group.bench_with_input(BenchmarkId::new("quantized", dim), &dim, |b, _| {
            b.iter(|| pq.search(black_box(&q), 100, None, None))
        });
        group.bench_with_input(BenchmarkId::new("flat_exact", dim), &dim, |b, _| {
            b.iter(|| flat.search(&s, black_box(&q), 100, None))
        });
    }
    group.finish();
}

/// End-to-end two-stage search at increasing rerank depth vs exact flat.
fn bench_two_stage(c: &mut Criterion) {
    let dim = 512usize;
    let s = source(dim, ROWS, 29);
    let pq = PqCodec::build(&s, Distance::Euclid, PqConfig::with_m(dim / 8).ks(256).seed(19));
    let flat = FlatIndex::new(Distance::Euclid);
    let q = query(dim, 23);
    let mut group = c.benchmark_group(format!("pq_lut/two_stage/{}", simd::backend()));
    for depth in [10usize, 40, 100, 400] {
        group.bench_with_input(BenchmarkId::new("rerank_depth", depth), &depth, |b, &d| {
            b.iter(|| pq.search_rerank(&SourceRerank(&s), black_box(&q), 10, d, None))
        });
    }
    group.bench_function("flat_exact", |b| {
        b.iter(|| flat.search(&s, black_box(&q), 10, None))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_lut_build, bench_coarse_scan, bench_two_stage
}
criterion_main!(benches);
