//! Table rendering and JSON result emission for the `repro` binary.

use serde::Serialize;

/// A simple aligned-column text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds as the paper does (h / m / s as appropriate).
pub fn human_secs(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.2} h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.2} m", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{:.2} s", secs)
    } else {
        format!("{:.1} ms", secs * 1e3)
    }
}

/// Serialize a result struct to pretty JSON (stdout or a results file).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("results are serializable")
}

/// Write a JSON result next to the repo's EXPERIMENTS.md
/// (`results/<name>.json`), creating the directory if needed.
pub fn write_result<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, to_json(value))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["Workers", "Time"]);
        t.row(["1", "8.22 h"]).row(["32", "21.67 m"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Workers"));
        assert!(lines[2].starts_with("1 "));
        assert!(lines[3].starts_with("32"));
        // Columns aligned: "Time" starts at the same offset everywhere.
        let col = lines[0].find("Time").unwrap();
        assert_eq!(&lines[2][col..col + 4], "8.22");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn human_times() {
        assert_eq!(human_secs(8.22 * 3600.0), "8.22 h");
        assert_eq!(human_secs(21.67 * 60.0), "21.67 m");
        assert_eq!(human_secs(59.0), "59.00 s");
        assert_eq!(human_secs(73.0), "1.22 m");
        assert_eq!(human_secs(0.0307), "30.7 ms");
    }

    #[test]
    fn json_roundtrip() {
        #[derive(serde::Serialize)]
        struct R {
            x: u32,
        }
        let s = to_json(&R { x: 7 });
        assert!(s.contains("\"x\": 7"));
    }
}
