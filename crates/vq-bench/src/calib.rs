//! Calibration: every paper-derived number, in one place.
//!
//! The experiment harness and the cost models consume these values; no
//! other module hard-codes a figure from the paper. Each constant's doc
//! comment names its source.

use vq_client::{InsertCostModel, QueryCostModel};
use vq_core::size::GB;
use vq_core::VectorLayout;

/// The paper's experiment-scale facts and the calibrated cost models.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Insert-path cost model (Figure 2 / Table 3 anchors — see
    /// [`vq_client::costs`] for the per-constant derivations).
    pub insert: InsertCostModel,
    /// Query-path cost model (Figure 4 / Figure 5 anchors).
    pub query: QueryCostModel,
    /// Index-build scaling model (Figure 3 anchors).
    pub index_build: crate::fig3::IndexBuildModel,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            insert: InsertCostModel::default(),
            query: QueryCostModel::default(),
            index_build: crate::fig3::IndexBuildModel::default(),
        }
    }
}

impl Calibration {
    /// §3.1: total papers embedded ("a total of 8,293,485 embeddings").
    pub const TOTAL_PAPERS: u64 = 8_293_485;

    /// §3: query terms ("a small subset of 22,723 terms related to
    /// genomes available through BV-BRC").
    pub const QUERY_TERMS: u64 = 22_723;

    /// §3.2: worker grid ("1, 4, 8, 16, and 32" Qdrant workers).
    pub const WORKER_GRID: [u32; 5] = [1, 4, 8, 16, 32];

    /// §3.2: the full dataset is "≈80 GB"; in vectors of the Qwen3
    /// layout that is:
    pub fn full_dataset_points() -> u64 {
        VectorLayout::QWEN3_4B.vectors_in(80 * GB)
    }

    /// The 1 GB tuning subset of §3.2/§3.4, in vectors.
    pub fn one_gb_points() -> u64 {
        VectorLayout::QWEN3_4B.vectors_in(GB)
    }

    /// Table 2 reference row: mean seconds per job batch.
    pub const TABLE2_MODEL_LOAD: f64 = 28.17;
    /// Table 2: I/O seconds.
    pub const TABLE2_IO: f64 = 7.49;
    /// Table 2: inference seconds.
    pub const TABLE2_INFERENCE: f64 = 2381.97;
    /// §3.1: total job runtime 2,417.84 ± 113.92 s; inference is 98.5 %.
    pub const TABLE2_TOTAL_MEAN: f64 = 2417.84;
    /// §3.1 jitter band.
    pub const TABLE2_TOTAL_STD: f64 = 113.92;

    /// Table 3 reference cells, hours, for workers [1, 4, 8, 16, 32].
    pub const TABLE3_HOURS: [f64; 5] = [8.22, 2.11, 1.14, 35.92 / 60.0, 21.67 / 60.0];

    /// Figure 2 anchors: 1 GB insert seconds at (batch 1, c=1),
    /// (batch 32, c=1), (batch 32, c=2).
    pub const FIG2_ANCHORS: [(usize, usize, f64); 3] =
        [(1, 1, 468.0), (32, 1, 381.0), (32, 2, 367.0)];

    /// Figure 4 anchors: 1 GB query seconds at (batch 1) and (batch 16).
    pub const FIG4_ANCHORS: [(usize, f64); 2] = [(1, 139.0), (16, 73.0)];

    /// §3.4 follow-up: per-batch call times at 2/4/8 in-flight (ms).
    pub const FIG4_CALL_TIMES_MS: [(usize, f64); 3] = [(2, 30.7), (4, 76.4), (8, 170.0)];

    /// §3.3: best index-build speedup at 32 workers.
    pub const FIG3_MAX_SPEEDUP: f64 = 21.32;
    /// §3.3: 1→4 workers speedup.
    pub const FIG3_SPEEDUP_AT_4: f64 = 1.27;

    /// §3.4: best query speedup and the size where parallelism starts
    /// winning.
    pub const FIG5_MAX_SPEEDUP: f64 = 3.57;
    /// §3.4 crossover dataset size (GB).
    pub const FIG5_CROSSOVER_GB: f64 = 30.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_scale_math() {
        // 80 GB of 10,312-byte records ≈ 7.76 M vectors — consistent with
        // the corpus's 8.29 M papers ("up to 8 million full-text papers").
        let pts = Calibration::full_dataset_points();
        assert!((7_000_000..8_300_000).contains(&pts), "{pts}");
        assert!(pts < Calibration::TOTAL_PAPERS);
        let one = Calibration::one_gb_points();
        // 1 GB ≈ 1/80th of the full set (up to per-GB flooring).
        assert!((one as i64 - (pts / 80) as i64).abs() <= 1, "{one} vs {pts}");
    }

    #[test]
    fn calibration_is_constructible() {
        let c = Calibration::default();
        assert!(c.insert.amdahl_ceiling(32) > 1.0);
        assert!(c.query.bcast_overhead(4) > 0.0);
        assert!(c.index_build.alpha > 1.0);
    }
}
