//! The index-build scaling model (Figure 3).
//!
//! Figure 3 plots HNSW (re)build time against dataset size for 1–32
//! workers. The paper reports two quantitative anchors:
//!
//! * maximum speedup **21.32×** at 32 workers, and
//! * a **1.27×** maximum speedup when going from one worker to four
//!   (four workers share one 32-core node, and a single worker already
//!   saturates 90–97 % of that node during builds).
//!
//! A per-worker build-time model `t = T_ref · (s/80 GB)^α · r(w)` with a
//! per-worker slowdown `r(w)` for co-located deployments fits both
//! anchors exactly:
//!
//! * solving `8^α = 21.32 / 1.27` gives **α ≈ 1.357** — per-segment
//!   build cost is superlinear in segment size (the O(log n) insertion
//!   factor of HNSW compounded by cache/memory-hierarchy effects on
//!   bigger graphs);
//! * solving the 4-worker anchor then gives `r(colocated) ≈ 5.17` — a
//!   co-located worker builds ≈5× slower per (GB^α): 32/4 = 8 cores
//!   instead of the ~30 a lone worker uses (×3.75), the rest
//!   memory-bandwidth contention between four concurrent graph builds.
//!
//! The absolute scale `T_ref` (single worker, 80 GB) is **not** printed
//! in the paper; we anchor it at 8 h — ≈270 vectors/s for d=2560 HNSW on
//! a saturated 32-core node, and consistent with insertion's 8.22 h
//! including background indexing. Only relative shape is asserted
//! anywhere.

use serde::{Deserialize, Serialize};

/// Parameters of the Figure 3 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexBuildModel {
    /// Single-worker full-dataset (80 GB) build time, seconds.
    pub t_ref_secs: f64,
    /// Superlinear per-segment exponent.
    pub alpha: f64,
    /// Per-worker slowdown when workers are co-located 4-per-node.
    pub colocated_slowdown: f64,
    /// Reference dataset size in GB (the paper's full set).
    pub ref_gb: f64,
}

impl Default for IndexBuildModel {
    fn default() -> Self {
        IndexBuildModel {
            t_ref_secs: 8.0 * 3600.0,
            // 8^α = 21.32/1.27 → α = ln(16.787)/ln(8)
            alpha: (21.32f64 / 1.27).ln() / 8f64.ln(),
            // r = 4^α / 1.27 (from the 1→4 anchor)
            colocated_slowdown: 4f64.powf((21.32f64 / 1.27).ln() / 8f64.ln()) / 1.27,
            ref_gb: 80.0,
        }
    }
}

impl IndexBuildModel {
    /// Wall time to (re)build all indexes for `gb` of data spread over
    /// `workers` workers (4 per node, as deployed in the paper).
    pub fn build_secs(&self, workers: u32, gb: f64) -> f64 {
        self.build_secs_with_colocation(workers, gb, 4)
    }

    /// Build time with an explicit co-location factor — the placement
    /// ablation. `workers_per_node = 1` gives each worker a full node
    /// (no contention slowdown), the deployment §3.3 suggests the
    /// workload actually wants; 2 interpolates; 4 is the paper's layout.
    pub fn build_secs_with_colocation(
        &self,
        workers: u32,
        gb: f64,
        workers_per_node: u32,
    ) -> f64 {
        assert!(workers >= 1 && workers_per_node >= 1);
        let per_worker_gb = gb / workers as f64;
        let shape = (per_worker_gb / self.ref_gb).powf(self.alpha);
        let occupancy = workers_per_node.min(workers);
        // Interpolate the per-worker slowdown between "whole node to
        // myself" (1.0) and the calibrated 4-per-node value, proportional
        // to how much of the node each worker loses: a worker sharing
        // k-ways keeps 1/k of the cores the lone worker enjoyed.
        let slowdown = match occupancy {
            1 => 1.0,
            k => {
                let full = self.colocated_slowdown; // at k = 4
                1.0 + (full - 1.0) * (k.min(4) as f64 - 1.0) / 3.0
            }
        };
        self.t_ref_secs * shape * slowdown
    }

    /// Speedup over the single-worker build at the same size.
    pub fn speedup(&self, workers: u32, gb: f64) -> f64 {
        self.build_secs(1, gb) / self.build_secs(workers, gb)
    }

    /// Speedup of the spread deployment (1 worker/node) over the paper's
    /// co-located one at the same worker count and size — what the
    /// cluster would gain by not packing 4 workers per node (at 4× the
    /// node allocation).
    pub fn spread_gain(&self, workers: u32, gb: f64) -> f64 {
        self.build_secs_with_colocation(workers, gb, 4)
            / self.build_secs_with_colocation(workers, gb, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_paper() {
        let m = IndexBuildModel::default();
        let s4 = m.speedup(4, 80.0);
        let s32 = m.speedup(32, 80.0);
        assert!((s4 - 1.27).abs() < 0.02, "1→4 speedup {s4:.3}");
        assert!((s32 - 21.32).abs() < 0.3, "32-worker speedup {s32:.2}");
    }

    #[test]
    fn speedups_monotone_in_workers() {
        let m = IndexBuildModel::default();
        let grid = [1u32, 4, 8, 16, 32];
        let mut last = 0.0;
        for &w in &grid {
            let s = m.speedup(w, 80.0);
            assert!(s > last, "speedup must grow: {s} after {last}");
            last = s;
        }
        // Sub-linear overall ("the scaling falls short of linear").
        assert!(last < 32.0);
    }

    #[test]
    fn build_time_grows_with_size() {
        let m = IndexBuildModel::default();
        for w in [1u32, 4, 32] {
            let mut last = 0.0;
            for gb in [1.0, 10.0, 40.0, 80.0] {
                let t = m.build_secs(w, gb);
                assert!(t > last);
                last = t;
            }
        }
    }

    #[test]
    fn superlinearity_in_segment_size() {
        let m = IndexBuildModel::default();
        // Doubling per-worker data more than doubles build time.
        let t40 = m.build_secs(1, 40.0);
        let t80 = m.build_secs(1, 80.0);
        assert!(t80 > 2.0 * t40);
        assert!(t80 < 3.0 * t40, "but not wildly so");
    }

    #[test]
    fn spread_placement_ablation() {
        let m = IndexBuildModel::default();
        // One worker per node: no contention slowdown at all.
        let spread = m.build_secs_with_colocation(4, 80.0, 1);
        let packed = m.build_secs_with_colocation(4, 80.0, 4);
        assert!((m.spread_gain(4, 80.0) - packed / spread).abs() < 1e-9);
        assert!(
            packed / spread > 4.0,
            "unpacking 4 workers should win big: {:.2}x",
            packed / spread
        );
        // Intermediate occupancy sits between the extremes.
        let two = m.build_secs_with_colocation(4, 80.0, 2);
        assert!(spread < two && two < packed);
        // A single worker is unaffected by the co-location factor.
        assert_eq!(
            m.build_secs_with_colocation(1, 80.0, 1),
            m.build_secs_with_colocation(1, 80.0, 4)
        );
    }

    #[test]
    fn speedup_is_size_independent_in_this_model() {
        // The power law makes relative speedups constant across sizes —
        // consistent with Figure 3's visually parallel curves.
        let m = IndexBuildModel::default();
        let a = m.speedup(8, 10.0);
        let b = m.speedup(8, 80.0);
        assert!((a - b).abs() < 1e-9);
    }
}
