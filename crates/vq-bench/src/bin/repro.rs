//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p vq-bench --bin repro -- all
//! cargo run --release -p vq-bench --bin repro -- fig2
//! cargo run --release -p vq-bench --bin repro -- table3 --json
//! cargo run --release -p vq-bench --bin repro -- fig2 --check --scale 0.05
//! cargo run --release -p vq-bench --bin repro -- live --json
//! ```
//!
//! Paper-scale experiments run through the calibrated discrete-event
//! simulation (virtual time — an "8.22 hour" cell takes milliseconds);
//! the criterion benches under `benches/` exercise the real engine at
//! laptop scale. `EXPERIMENTS.md` records both against the paper.
//!
//! * `--scale f` shrinks the workload (points/queries) by `f` for smoke
//!   runs; shape criteria survive scaling even though absolute seconds
//!   don't.
//! * `--check` verifies the EXPERIMENTS.md shape criteria (U-shaped
//!   batch curve, concurrency minimum at 2) and exits non-zero on
//!   violation — the CI smoke contract.
//! * `live` (not part of `all`) drives a real in-process cluster and
//!   records cluster-side `WorkerInfo` telemetry — per-phase timings and
//!   coordinator saturations — alongside client-side latency.
//! * `chaos` (not part of `all`) kills and restarts workers under a
//!   seeded fault plan while a replicated, WAL-backed cluster ingests;
//!   `--check` fails on any lost acknowledged write, over-deadline query,
//!   or unreported coverage loss — the CI chaos-smoke contract.
//! * `heal` (not part of `all`) runs the chaos soak with the operator
//!   deleted: `HealConfig` enabled, a seeded transient refusal plus a
//!   hard `crash_worker` mid-traffic; `--check` fails unless detection,
//!   restart, and rebuild all happen autonomously (zero
//!   `restart_worker` calls), no acked write is lost, and replication
//!   is restored — the CI heal-smoke contract.
//! * `quantized` (not part of `all`) builds a quantized-resident
//!   collection (PQ codes in RAM, full-precision vectors demand-paged)
//!   and sweeps rerank depth; `--check` enforces the BENCH_PQ.json
//!   acceptance floors — the CI quantized-smoke contract.
//! * `paradox` (not part of `all`) sweeps workers × threads-per-worker
//!   over real clusters (global rayon vs per-worker pools vs pinned
//!   fair-share pools) and over the oversubscription-penalized virtual
//!   node; `--check` enforces the BENCH_PARADOX.json gates — the CI
//!   paradox-smoke contract.
//! * `trace` (not part of `all`) traces real searches end to end —
//!   direct over the fabric and through the REST edge with injected
//!   `x-vq-trace-id`s — and attributes tail latency to phases; `--check`
//!   requires a complete span tree per request on the chosen
//!   `--transport` — the CI trace-smoke contract.

use serde::Serialize;
use vq_bench::calib::Calibration;
use vq_bench::report::{human_secs, write_result, TextTable};
use vq_bench::table1;
use vq_client::{simulate_query_run, simulate_upload, ExecutorKind};
use vq_client::{sweep_batch_size, sweep_concurrency, tuning::SweepTarget};
use vq_core::size::GB;
use vq_embed::{Orchestrator, OrchestratorConfig};
use vq_hpc::{JobQueue, JobQueueConfig, NodeSpec, SimDuration};
use vq_workload::CorpusSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut check = false;
    let mut scale = 1.0f64;
    let mut tcp = false;
    let mut which: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--json" => json = true,
            "--check" => check = true,
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|&f| f > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a positive number");
                        std::process::exit(2);
                    });
            }
            "--transport" => {
                i += 1;
                tcp = match args.get(i).map(String::as_str) {
                    Some("tcp") => true,
                    Some("inproc") => false,
                    other => {
                        eprintln!("--transport needs inproc|tcp, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--transport=tcp" => tcp = true,
            "--transport=inproc" => tcp = false,
            s if s.starts_with("--scale=") => {
                scale = s["--scale=".len()..]
                    .parse::<f64>()
                    .ok()
                    .filter(|&f| f > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a positive number");
                        std::process::exit(2);
                    });
            }
            s if !s.starts_with("--") => which = Some(s.to_string()),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    let which = which.as_str();

    // Flight recorder: on unless VQ_OBS=0. The simulated experiments run
    // with it too (same span names as the live path — that is the point),
    // but only `live`/`ingest` embed the snapshot in their results.
    vq_obs::install_from_env();

    let calib = Calibration::default();
    let known = [
        "table1", "table2", "fig2", "table3", "fig3", "fig4", "fig5", "ablation",
        "variability", "pipeline", "live", "ingest", "chaos", "heal", "quantized",
        "protocol", "paradox", "trace", "all",
    ];
    if !known.contains(&which) {
        eprintln!("unknown experiment `{which}`; one of: {}", known.join(", "));
        std::process::exit(2);
    }
    let run = |name: &str| which == "all" || which == name;

    if run("table1") {
        print_table1(json);
    }
    if run("table2") {
        print_table2(&calib, json);
    }
    if run("fig2") {
        print_fig2(&calib, json, check, scale);
    }
    if run("table3") {
        print_table3(&calib, json);
    }
    if run("fig3") {
        print_fig3(&calib, json);
    }
    if run("fig4") {
        print_fig4(&calib, json, check, scale);
    }
    if run("fig5") {
        print_fig5(&calib, json);
    }
    if run("ablation") {
        print_ablation(json);
    }
    if run("variability") {
        print_variability(&calib, json);
    }
    if run("pipeline") {
        print_pipeline(&calib, json);
    }
    // Live cluster telemetry: opt-in only (spins up real worker threads),
    // never part of `all`.
    if which == "live" {
        print_live(json, check);
    }
    // Ingest-path comparison: opt-in only (real WAL files on this
    // machine); `--check` makes it the CI ingest-bench-smoke contract.
    if which == "ingest" {
        print_ingest(json, check, scale);
    }
    // Chaos soak: opt-in only (kills and restarts real worker threads
    // under seeded faults); `--check` makes it the CI chaos-smoke
    // contract — zero acknowledged writes lost across kill/restart
    // cycles, and queries stay deadline-bounded while workers are down.
    if which == "chaos" {
        print_chaos(json, check, scale, tcp);
    }
    // Self-healing soak: opt-in only (crashes real worker threads and
    // lets the failure detector + stabilizer repair the cluster with no
    // operator call); `--check` makes it the CI heal-smoke contract —
    // bounded detection latency, at least one autonomous restart and one
    // completed rebuild, zero acked writes lost, replication restored,
    // and zero operator `restart_worker` calls.
    if which == "heal" {
        print_heal(json, check, scale, tcp);
    }
    // Quantized-resident memory hierarchy: opt-in only (trains real PQ
    // codebooks); `--check` makes it the CI quantized-smoke contract —
    // recall@10 ≥ 0.95 at a measured rerank depth, ≥ 4x resident-byte
    // reduction, and a coarse-scan speedup over the exact scan.
    if which == "quantized" {
        print_quantized(json, check, scale);
    }
    // REST-vs-binary serving ablation: opt-in only (binds loopback
    // listeners and spins up real clusters); `--check` makes it the CI
    // protocol-smoke contract — the binary hot path is no slower than
    // REST at p50 for upsert+search, and all three access paths (in-proc,
    // binary frames, REST JSON) return bit-identical results.
    if which == "protocol" {
        print_protocol(json, check, scale);
    }
    // Scaling-paradox sweep: opt-in only (spins up one real cluster per
    // sweep point and arm); `--check` makes it the CI paradox-smoke
    // contract — the worst oversubscribed configuration stops losing
    // throughput once search runs on fair-share pinned pools, and no
    // sweep point falls >10 % below the best smaller configuration.
    if which == "paradox" {
        print_paradox(json, check, scale);
    }
    // Distributed-tracing probe: opt-in only (real clusters plus a REST
    // server on loopback); `--check` makes it the CI trace-smoke contract
    // — every sampled search yields a complete, well-nested span tree
    // with ids intact across the fabric and the REST edge, slow requests
    // are always retained, the Chrome export is valid JSON, and the
    // tail-latency attribution table lands in results/trace.json.
    if which == "trace" {
        print_trace(json, check, scale, tcp);
    }
}

/// Verify a list of named shape criteria; exit non-zero listing every
/// violation. The absolute numbers scale with the workload, the shapes
/// must not — this is what the CI smoke job pins.
fn enforce_shapes(figure: &str, criteria: &[(&str, bool)]) {
    let failed: Vec<&str> = criteria
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(name, _)| *name)
        .collect();
    if failed.is_empty() {
        println!("[check] {figure}: all {} shape criteria hold", criteria.len());
    } else {
        for name in &failed {
            eprintln!("[check] {figure}: FAILED {name}");
        }
        std::process::exit(1);
    }
}

/// Scale a workload size, keeping enough batches for shapes to be
/// meaningful.
fn scaled(n: u64, scale: f64, floor: u64) -> u64 {
    ((n as f64 * scale) as u64).max(floor)
}

#[derive(Serialize)]
struct PipelineOut {
    workers: u32,
    sequential_secs: f64,
    overlapped_secs: f64,
    saved_secs: f64,
}

/// End-to-end workflow study (beyond the paper): the paper measures
/// embedding generation and insertion as separate phases; a scientific
/// campaign would stream embeddings into the database as jobs finish.
/// This computes the overlapped makespan from the orchestrator's job
/// completion curve and the calibrated insertion rate.
fn print_pipeline(calib: &Calibration, json: bool) {
    section("End-to-end campaign: sequential phases vs embed→insert overlap");
    // Embed a 2-million-paper slice (≈520 jobs) through 3 queues.
    let orchestrator = Orchestrator::new(
        OrchestratorConfig::default(),
        CorpusSpec::pes2o(),
        NodeSpec::polaris(),
    );
    let queues: Vec<JobQueue> = (0..3)
        .map(|_| {
            JobQueue::new(JobQueueConfig {
                max_running: 8,
                dispatch_delay: SimDuration::from_secs(45),
            })
        })
        .collect();
    let papers = 2_000_000u64;
    let report = orchestrator.run(&queues, 0..papers, None);
    println!(
        "embedding: {} jobs over {} (3 queues x 8 nodes)",
        report.jobs.len(),
        human_secs(report.wall_secs)
    );

    let mut t = TextTable::new(["Workers", "Sequential", "Overlapped", "Saved"]);
    let mut out = Vec::new();
    for &w in &Calibration::WORKER_GRID {
        // Insertion rate (points/s): W clients at batch 32, 2 in flight.
        let per_batch = (calib.insert.cpu_secs(32) + calib.insert.asyncio_overhead)
            / calib.insert.contention_factor(w);
        let rate = w as f64 * 32.0 / per_batch;
        // Sequential: all embedding, then all insertion.
        let sequential = report.wall_secs + papers as f64 / rate;
        // Overlapped: insertion consumes job outputs as they complete;
        // finish = max over jobs of (completion + points-still-to-come/rate),
        // the work-conserving bound.
        let per_job: Vec<u64> = report.jobs.iter().map(|j| j.papers).collect();
        let total: u64 = per_job.iter().sum();
        let mut remaining = total;
        let mut overlapped: f64 = 0.0;
        for (c, p) in report.completions_secs.iter().zip(&per_job) {
            overlapped = overlapped.max(c + remaining as f64 / rate);
            remaining -= p;
        }
        t.row([
            w.to_string(),
            human_secs(sequential),
            human_secs(overlapped),
            format!("{:.0} %", 100.0 * (sequential - overlapped) / sequential),
        ]);
        out.push(PipelineOut {
            workers: w,
            sequential_secs: sequential,
            overlapped_secs: overlapped,
            saved_secs: sequential - overlapped,
        });
    }
    print!("{}", t.render());
    println!("(streaming embeddings into the cluster hides most of the insertion time — the end-to-end win the paper's intro motivates)");
    emit(json, "pipeline", &out);
}

#[derive(Serialize)]
struct VariabilityRow {
    cv: f64,
    wall_secs: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// The paper's stated future work, implemented: how service-time
/// dispersion on a shared system turns into tail latency through queueing
/// at the serial worker.
fn print_variability(calib: &Calibration, json: bool) {
    use vq_client::simulate_query_run_stochastic;
    section("Variability (paper future work): tails vs service-time dispersion");
    println!("1 GB, batch 16, 2 in flight, single worker; log-normal service times.");
    let mut rows = Vec::new();
    let mut t = TextTable::new(["CV", "Run time", "p50/batch", "p95/batch", "p99/batch"]);
    for cv in [0.0f64, 0.1, 0.3, 0.5, 1.0] {
        let out = simulate_query_run_stochastic(
            Calibration::QUERY_TERMS,
            16,
            2,
            1,
            GB as f64,
            &calib.query,
            cv,
            7,
        );
        t.row([
            format!("{cv:.1}"),
            human_secs(out.wall_secs),
            format!("{:.1} ms", out.p50_secs * 1e3),
            format!("{:.1} ms", out.p95_secs * 1e3),
            format!("{:.1} ms", out.p99_secs * 1e3),
        ]);
        rows.push(VariabilityRow {
            cv,
            wall_secs: out.wall_secs,
            p50_ms: out.p50_secs * 1e3,
            p95_ms: out.p95_secs * 1e3,
            p99_ms: out.p99_secs * 1e3,
        });
    }
    print!("{}", t.render());
    println!("(tail inflation ≫ dispersion: queueing amplifies variance at a saturated worker)");
    emit(json, "variability", &rows);
}

#[derive(Serialize)]
struct AblationRow {
    index: String,
    build_ms: f64,
    query_us: f64,
    recall_at_10: f64,
}

/// Real-engine recall/latency trade-off on clustered synthetic data — the
/// ann-benchmarks-style measurement the related-work section alludes to,
/// run live on this machine (not simulated).
fn print_ablation(json: bool) {
    use std::time::Instant;
    use vq_core::Distance;
    use vq_index::{
        DenseVectors, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, IvfPqConfig,
        IvfPqIndex, PqCodec, PqConfig, SqCodec, SqConfig, VectorSource,
    };
    use vq_workload::{CorpusSpec, EmbeddingModel, TermWorkload};

    section("Index ablation (live, this machine): recall vs latency");
    let n = 20_000u64;
    let dim = 64;
    let corpus = CorpusSpec::small(n).seed(31);
    let model = EmbeddingModel::small(&corpus, dim);
    let mut source = DenseVectors::new(dim);
    for i in 0..n {
        source.push(&model.embed(i, corpus.paper(i).topic));
    }
    let queries: Vec<Vec<f32>> = TermWorkload::generate(&corpus, 200).query_vectors(&model);
    let flat = FlatIndex::new(Distance::Cosine);
    let truth: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| flat.search(&source, q, 10, None).iter().map(|h| h.0).collect())
        .collect();

    let mut rows: Vec<AblationRow> = Vec::new();
    let mut measure = |name: &str,
                       build: &mut dyn FnMut() -> Box<dyn Fn(&[f32]) -> Vec<u32>>| {
        let t0 = Instant::now();
        let search = build();
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let results: Vec<Vec<u32>> = queries.iter().map(|q| search(q)).collect();
        let query_us = t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;
        let recall = results
            .iter()
            .zip(&truth)
            .map(|(got, want)| vq_index::recall_at_k(got, want))
            .sum::<f64>()
            / queries.len() as f64;
        rows.push(AblationRow {
            index: name.to_string(),
            build_ms,
            query_us,
            recall_at_10: recall,
        });
    };

    measure("flat (exact)", &mut || {
        let flat = FlatIndex::new(Distance::Cosine);
        let source = &source;
        Box::new(move |q: &[f32]| flat.search(source, q, 10, None).iter().map(|h| h.0).collect())
    });
    for ef in [32usize, 128] {
        measure(&format!("hnsw m16 ef{ef}"), &mut || {
            let idx = HnswIndex::build(&source, Distance::Cosine, HnswConfig::default().seed(1));
            let source = &source;
            Box::new(move |q: &[f32]| {
                idx.search(source, q, 10, ef, None).iter().map(|h| h.0).collect()
            })
        });
    }
    for nprobe in [4usize, 16] {
        measure(&format!("ivf64 nprobe{nprobe}"), &mut || {
            let idx =
                IvfIndex::build(&source, Distance::Cosine, IvfConfig::with_nlist(64).seed(2));
            let source = &source;
            Box::new(move |q: &[f32]| {
                idx.search(source, q, 10, Some(nprobe), None)
                    .iter()
                    .map(|h| h.0)
                    .collect()
            })
        });
    }
    measure("pq m8 ks64", &mut || {
        let pq = PqCodec::build(&source, Distance::Cosine, PqConfig::with_m(8).ks(64).seed(3));
        Box::new(move |q: &[f32]| pq.search(q, 10, None, None).iter().map(|h| h.0).collect())
    });
    measure("pq m8 ks64 + rescore", &mut || {
        let pq = PqCodec::build(&source, Distance::Cosine, PqConfig::with_m(8).ks(64).seed(3));
        let source = &source;
        Box::new(move |q: &[f32]| {
            // The standard compressed pipeline: oversample with ADC, then
            // re-rank the survivors at full precision.
            let cands: Vec<u32> = pq.search(q, 100, None, None).iter().map(|h| h.0).collect();
            let mut rescored: Vec<(f32, u32)> = cands
                .into_iter()
                .map(|o| (Distance::Cosine.score(q, source.vector(o)), o))
                .collect();
            rescored.sort_by(|a, b| b.0.total_cmp(&a.0));
            rescored.into_iter().take(10).map(|(_, o)| o).collect()
        })
    });
    measure("ivf-pq nprobe8 + rescore", &mut || {
        let idx = IvfPqIndex::build(
            &source,
            Distance::Cosine,
            IvfPqConfig {
                ivf: IvfConfig::with_nlist(64).seed(5),
                pq: PqConfig::with_m(8).ks(64).seed(6),
                oversample: 8,
            },
        );
        let source = &source;
        Box::new(move |q: &[f32]| {
            idx.search(source, q, 10, Some(8), None)
                .iter()
                .map(|h| h.0)
                .collect()
        })
    });
    measure("sq int8 + rescore", &mut || {
        let sq = SqCodec::build(&source, Distance::Cosine, SqConfig::default());
        let source = &source;
        Box::new(move |q: &[f32]| {
            sq.search(q, 10, Some(source), None).iter().map(|h| h.0).collect()
        })
    });

    let mut t = TextTable::new(["Index", "Build", "Query", "Recall@10"]);
    for r in &rows {
        t.row([
            r.index.clone(),
            format!("{:.0} ms", r.build_ms),
            format!("{:.0} us", r.query_us),
            format!("{:.3}", r.recall_at_10),
        ]);
    }
    print!("{}", t.render());
    emit(json, "ablation", &rows);
}

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn emit<T: Serialize>(json: bool, name: &str, value: &T) {
    if json {
        match write_result(name, value) {
            Ok(path) => println!("[wrote {}]", path.display()),
            Err(e) => eprintln!("[failed to write results/{name}.json: {e}]"),
        }
    }
}

fn print_table1(json: bool) {
    section("Table 1: distributed vector database features");
    let mut t = TextTable::new(
        ["System"]
            .into_iter()
            .chain(table1::FEATURES)
            .collect::<Vec<_>>(),
    );
    let mut all = table1::rows();
    all.push(table1::vq_row());
    for r in &all {
        t.row([
            r.system,
            r.parallel_rw.glyph(),
            r.compute_storage_separation.glyph(),
            r.autoscaling.glyph(),
            r.replication.glyph(),
            r.gpu_indexing.glyph(),
            r.gpu_ann.glyph(),
        ]);
    }
    print!("{}", t.render());
    emit(json, "table1", &all);
}

#[derive(Serialize)]
struct Table2Out {
    jobs: usize,
    mean_model_load_secs: f64,
    mean_io_secs: f64,
    mean_inference_secs: f64,
    total_mean_secs: f64,
    total_std_secs: f64,
    inference_fraction: f64,
    sequential_fraction: f64,
}

fn print_table2(_calib: &Calibration, json: bool) {
    section("Table 2: embedding generation runtime breakdown");
    let orchestrator = Orchestrator::new(
        OrchestratorConfig::default(),
        CorpusSpec::pes2o(),
        NodeSpec::polaris(),
    );
    let queues: Vec<JobQueue> = (0..3)
        .map(|_| {
            JobQueue::new(JobQueueConfig {
                max_running: 8,
                dispatch_delay: SimDuration::from_secs(45),
            })
        })
        .collect();
    // 200 jobs ≈ 800 k papers: enough for stable means; the full 2,079-job
    // campaign runs in a few seconds more if you want it (0..8_293_485).
    let report = orchestrator.run(&queues, 0..800_000, None);
    let (mean, std) = report.total_mean_std();
    let mut t = TextTable::new(["Phase", "Ours (s)", "Paper (s)"]);
    t.row([
        "Model loading".to_string(),
        format!("{:.2}", report.mean_model_load()),
        format!("{:.2}", Calibration::TABLE2_MODEL_LOAD),
    ])
    .row([
        "I/O".to_string(),
        format!("{:.2}", report.mean_io()),
        format!("{:.2}", Calibration::TABLE2_IO),
    ])
    .row([
        "Inference".to_string(),
        format!("{:.2}", report.mean_inference()),
        format!("{:.2}", Calibration::TABLE2_INFERENCE),
    ])
    .row([
        "Total".to_string(),
        format!("{mean:.2} ± {std:.2}"),
        format!(
            "{:.2} ± {:.2}",
            Calibration::TABLE2_TOTAL_MEAN,
            Calibration::TABLE2_TOTAL_STD
        ),
    ]);
    print!("{}", t.render());
    println!(
        "inference share: {:.1} % (paper: 98.5 %)   sequential papers: {:.3} % (paper: <0.10 %)",
        100.0 * report.inference_fraction(),
        100.0 * report.sequential_fraction()
    );
    for (i, q) in queues.iter().enumerate() {
        if let Some(wait) = q.mean_wait() {
            println!(
                "queue {i}: {} jobs, mean queue wait {}",
                q.completed(),
                human_secs(wait.as_secs_f64())
            );
        }
    }

    // GPU-count ablation (the paper's future-work direction: per-node
    // accelerator utilization).
    let gpu_grid = [1u32, 2, 4];
    let inference: Vec<f64> = gpu_grid
        .iter()
        .map(|&gpus| {
            let mut node = NodeSpec::polaris();
            node.gpus = gpus;
            let orchestrator =
                Orchestrator::new(OrchestratorConfig::default(), CorpusSpec::pes2o(), node);
            let q = vec![JobQueue::new(JobQueueConfig {
                max_running: 8,
                dispatch_delay: SimDuration::from_secs(45),
            })];
            orchestrator.run(&q, 0..80_000, None).mean_inference()
        })
        .collect();
    let base = inference[2]; // 4 GPUs
    let mut t = TextTable::new(["GPUs/node", "Mean inference (s)", "vs 4 GPUs"]);
    for (i, &gpus) in gpu_grid.iter().enumerate() {
        t.row([
            gpus.to_string(),
            format!("{:.0}", inference[i]),
            format!("{:.2}x", inference[i] / base),
        ]);
    }
    print!("{}", t.render());
    emit(
        json,
        "table2",
        &Table2Out {
            jobs: report.jobs.len(),
            mean_model_load_secs: report.mean_model_load(),
            mean_io_secs: report.mean_io(),
            mean_inference_secs: report.mean_inference(),
            total_mean_secs: mean,
            total_std_secs: std,
            inference_fraction: report.inference_fraction(),
            sequential_fraction: report.sequential_fraction(),
        },
    );
}

#[derive(Serialize)]
struct SweepOut {
    param: usize,
    secs: f64,
}

#[derive(Serialize)]
struct Fig2Out {
    batch_sweep: Vec<SweepOut>,
    concurrency_sweep: Vec<SweepOut>,
}

/// Seconds at one sweep parameter, for shape checks.
fn secs_at(points: &[vq_client::SweepPoint], param: usize) -> f64 {
    points
        .iter()
        .find(|p| p.param == param)
        .map(|p| p.secs)
        .unwrap_or_else(|| panic!("sweep is missing param {param}"))
}

fn print_fig2(calib: &Calibration, json: bool, check: bool, scale: f64) {
    section("Figure 2: 1 GB insertion — batch size and parallel requests");
    let points = scaled(Calibration::one_gb_points(), scale, 2_000);
    let target = SweepTarget::Insert {
        points,
        model: &calib.insert,
    };
    let batches = sweep_batch_size(target, &[1, 2, 4, 8, 16, 32, 64, 128, 256], 1);
    let mut t = TextTable::new(["Batch size", "Ours", "Paper"]);
    for p in &batches {
        let paper = match p.param {
            1 => "468 s",
            32 => "381 s (optimum)",
            _ => "-",
        };
        t.row([p.param.to_string(), human_secs(p.secs), paper.to_string()]);
    }
    print!("{}", t.render());

    let conc = sweep_concurrency(target, 32, &[1, 2, 4, 8, 16]);
    let mut t = TextTable::new(["Parallel requests", "Ours", "Paper"]);
    for p in &conc {
        let paper = match p.param {
            1 => "381 s",
            2 => "367 s (optimum)",
            _ => "worse (asyncio)",
        };
        t.row([p.param.to_string(), human_secs(p.secs), paper.to_string()]);
    }
    print!("{}", t.render());
    println!(
        "asyncio Amdahl ceiling at batch 32: {:.2}x (paper derives 1.31x from the conversion/RPC pair)",
        calib.insert.amdahl_ceiling(32)
    );
    if check {
        // EXPERIMENTS.md Figure 2 shape criteria — scale-invariant.
        enforce_shapes(
            "fig2",
            &[
                ("batch curve falls from 1 to 32", secs_at(&batches, 1) > secs_at(&batches, 32)),
                ("batch curve rises from 32 to 256 (U-shape)",
                 secs_at(&batches, 256) > secs_at(&batches, 32)),
                ("2 in flight beats 1", secs_at(&conc, 2) < secs_at(&conc, 1)),
                ("4 in flight loses to 2 (minimum at 2)",
                 secs_at(&conc, 4) > secs_at(&conc, 2)),
            ],
        );
    }
    emit(
        json,
        "fig2",
        &Fig2Out {
            batch_sweep: batches
                .iter()
                .map(|p| SweepOut {
                    param: p.param,
                    secs: p.secs,
                })
                .collect(),
            concurrency_sweep: conc
                .iter()
                .map(|p| SweepOut {
                    param: p.param,
                    secs: p.secs,
                })
                .collect(),
        },
    );
}

#[derive(Serialize)]
struct Table3Out {
    workers: u32,
    secs: f64,
    paper_secs: f64,
}

fn print_table3(calib: &Calibration, json: bool) {
    section("Table 3: full 80 GB insertion time vs workers");
    let points = Calibration::full_dataset_points();
    let mut t = TextTable::new(["Workers", "Ours", "Paper", "Error"]);
    let mut out = Vec::new();
    for (i, &w) in Calibration::WORKER_GRID.iter().enumerate() {
        let got = simulate_upload(
            points,
            32,
            ExecutorKind::MultiProcess { in_flight: 2 },
            w,
            &calib.insert,
        )
        .wall_secs;
        let paper = Calibration::TABLE3_HOURS[i] * 3600.0;
        t.row([
            w.to_string(),
            human_secs(got),
            human_secs(paper),
            format!("{:+.1} %", 100.0 * (got - paper) / paper),
        ]);
        out.push(Table3Out {
            workers: w,
            secs: got,
            paper_secs: paper,
        });
    }
    print!("{}", t.render());
    emit(json, "table3", &out);
}

#[derive(Serialize)]
struct Fig3Out {
    workers: u32,
    gb: f64,
    secs: f64,
}

fn print_fig3(calib: &Calibration, json: bool) {
    section("Figure 3: index build time vs dataset size and workers");
    let sizes = [1.0f64, 5.0, 10.0, 20.0, 40.0, 80.0];
    let mut header: Vec<String> = vec!["GB \\ workers".into()];
    header.extend(Calibration::WORKER_GRID.iter().map(|w| w.to_string()));
    let mut t = TextTable::new(header);
    let mut out = Vec::new();
    for &gb in &sizes {
        let mut row = vec![format!("{gb:.0}")];
        for &w in &Calibration::WORKER_GRID {
            let secs = calib.index_build.build_secs(w, gb);
            row.push(human_secs(secs));
            out.push(Fig3Out { workers: w, gb, secs });
        }
        t.row(row);
    }
    print!("{}", t.render());
    println!(
        "speedups at 80 GB: 4 workers {:.2}x (paper 1.27x), 32 workers {:.2}x (paper 21.32x)",
        calib.index_build.speedup(4, 80.0),
        calib.index_build.speedup(32, 80.0),
    );
    // Placement ablation: what 1-worker-per-node deployment would buy
    // (the paper's takeaway that co-locating 4 workers is wasteful for
    // CPU index builds).
    let mut t = TextTable::new(["Workers", "4/node (paper)", "1/node (spread)", "Gain"]);
    for &w in &[4u32, 8, 16, 32] {
        let packed = calib.index_build.build_secs_with_colocation(w, 80.0, 4);
        let spread = calib.index_build.build_secs_with_colocation(w, 80.0, 1);
        t.row([
            w.to_string(),
            human_secs(packed),
            human_secs(spread),
            format!("{:.2}x", packed / spread),
        ]);
    }
    print!("{}", t.render());
    emit(json, "fig3", &out);
}

#[derive(Serialize)]
struct Fig4Out {
    batch_sweep: Vec<SweepOut>,
    concurrency_sweep: Vec<SweepOut>,
    call_times_ms: Vec<(usize, f64)>,
}

fn print_fig4(calib: &Calibration, json: bool, check: bool, scale: f64) {
    section("Figure 4: 1 GB query run — batch size and parallel requests");
    let queries = scaled(Calibration::QUERY_TERMS, scale, 1_000);
    let target = SweepTarget::Query {
        queries,
        dataset_bytes: GB as f64,
        model: &calib.query,
    };
    let batches = sweep_batch_size(target, &[1, 2, 4, 8, 16, 32, 64, 128], 1);
    let mut t = TextTable::new(["Batch size", "Ours", "Paper"]);
    for p in &batches {
        let paper = match p.param {
            1 => "139 s",
            16 => "73 s (then flat)",
            _ => "-",
        };
        t.row([p.param.to_string(), human_secs(p.secs), paper.to_string()]);
    }
    print!("{}", t.render());

    let conc = sweep_concurrency(target, 16, &[1, 2, 4, 8]);
    let mut t = TextTable::new(["Parallel requests", "Ours", "Paper"]);
    for p in &conc {
        let paper = match p.param {
            2 => "optimum",
            _ => "-",
        };
        t.row([p.param.to_string(), human_secs(p.secs), paper.to_string()]);
    }
    print!("{}", t.render());

    // Per-batch call-time inflation (§3.4 follow-up probe).
    let mut call_times = Vec::new();
    let mut t = TextTable::new(["In flight", "Ours (ms/batch)", "Paper (ms/batch)"]);
    for (c, paper_ms) in Calibration::FIG4_CALL_TIMES_MS {
        let run = simulate_query_run(queries, 16, c, 1, GB as f64, &calib.query);
        let ms = run.mean_batch_call_secs * 1e3;
        t.row([
            c.to_string(),
            format!("{ms:.1}"),
            format!("{paper_ms:.1}"),
        ]);
        call_times.push((c, ms));
    }
    print!("{}", t.render());
    println!("(absolute call times differ — ours measure full sojourn — but the ~2x-per-step inflation shape matches)");
    if check {
        // EXPERIMENTS.md Figure 4 shape criteria — scale-invariant.
        enforce_shapes(
            "fig4",
            &[
                ("batch curve falls from 1 to 16", secs_at(&batches, 1) > secs_at(&batches, 16)),
                ("batch curve keeps falling to 64 (flattens, never rises)",
                 secs_at(&batches, 64) < secs_at(&batches, 16)),
                ("2 in flight beats 1", secs_at(&conc, 2) < secs_at(&conc, 1)),
                ("4 in flight loses to 2 (minimum at 2)",
                 secs_at(&conc, 4) > secs_at(&conc, 2)),
                ("8 in flight loses to 4", secs_at(&conc, 8) > secs_at(&conc, 4)),
            ],
        );
    }
    emit(
        json,
        "fig4",
        &Fig4Out {
            batch_sweep: batches
                .iter()
                .map(|p| SweepOut {
                    param: p.param,
                    secs: p.secs,
                })
                .collect(),
            concurrency_sweep: conc
                .iter()
                .map(|p| SweepOut {
                    param: p.param,
                    secs: p.secs,
                })
                .collect(),
            call_times_ms: call_times,
        },
    );
}

#[derive(Serialize)]
struct Fig5Out {
    workers: u32,
    gb: f64,
    secs: f64,
}

fn print_fig5(calib: &Calibration, json: bool) {
    section("Figure 5: query time vs dataset size and workers");
    let sizes = [1.0f64, 5.0, 10.0, 20.0, 30.0, 50.0, 80.0];
    let mut header: Vec<String> = vec!["GB \\ workers".into()];
    header.extend(Calibration::WORKER_GRID.iter().map(|w| w.to_string()));
    let mut t = TextTable::new(header);
    let mut out = Vec::new();
    for &gb in &sizes {
        let mut row = vec![format!("{gb:.0}")];
        for &w in &Calibration::WORKER_GRID {
            let secs = simulate_query_run(
                Calibration::QUERY_TERMS,
                16,
                2,
                w,
                gb * GB as f64,
                &calib.query,
            )
            .wall_secs;
            row.push(human_secs(secs));
            out.push(Fig5Out { workers: w, gb, secs });
        }
        t.row(row);
    }
    print!("{}", t.render());
    let t1 = simulate_query_run(Calibration::QUERY_TERMS, 16, 2, 1, 80.0 * GB as f64, &calib.query)
        .wall_secs;
    let best = Calibration::WORKER_GRID[1..]
        .iter()
        .map(|&w| {
            t1 / simulate_query_run(
                Calibration::QUERY_TERMS,
                16,
                2,
                w,
                80.0 * GB as f64,
                &calib.query,
            )
            .wall_secs
        })
        .fold(0.0, f64::max);
    println!(
        "best speedup at 80 GB: {best:.2}x (paper 3.57x); multi-worker wins only past ~25-30 GB (paper: ~30 GB)"
    );
    emit(json, "fig5", &out);
}

#[derive(Serialize)]
struct IngestStageOut {
    /// `per_point` or `block`.
    path: String,
    upload_secs: f64,
    batches: u64,
    /// Client CPU converting one batch for the wire, mean ms — the live
    /// counterpart of the paper's 45.64 ms/32-batch profiling line.
    conversion_ms_per_batch: f64,
    /// Time inside the upsert RPC per batch, mean ms — the paper's
    /// 14.86 ms counterpart.
    rpc_ms_per_batch: f64,
}

#[derive(Serialize)]
struct LiveOut {
    workers: u32,
    points: u64,
    queries: u64,
    upload_secs: f64,
    upload_batches: u64,
    query_secs: f64,
    mean_batch_latency_ms: f64,
    p95_batch_latency_ms: f64,
    /// Client-side conversion/RPC stage breakdown for both ingest paths
    /// (per-point reference, then columnar block).
    ingest: Vec<IngestStageOut>,
    /// Cluster-side telemetry, one row per worker: request counters,
    /// coordinator saturations, and the per-phase nanosecond timers.
    worker_info: Vec<vq_cluster::WorkerInfo>,
    /// Full `vq-obs` registry snapshot: every counter/gauge, plus
    /// per-phase latency histograms (`phase.*`, nanoseconds) with
    /// p50/p95/p99. `null` when the recorder is disabled (`VQ_OBS=0`).
    metrics: serde_json::Value,
}

/// The installed recorder's registry as a JSON value for embedding in a
/// results file (`Value::Null` when no recorder is installed).
fn obs_metrics_json() -> serde_json::Value {
    vq_obs::snapshot()
        .map(|s| {
            serde_json::from_str(&s.to_json())
                .expect("vq-obs JSON export is valid JSON")
        })
        .unwrap_or(serde_json::Value::Null)
}

/// Print p50/p95/p99 (ms) for the named `phase.*` histograms — the
/// flight-recorder view of the same run the tables above summarize with
/// means. Returns per-phase observation counts for `--check`.
fn print_phase_percentiles(snap: &vq_obs::Snapshot, phases: &[&str]) -> Vec<(String, u64)> {
    let mut t = TextTable::new(["Phase", "Count", "p50 ms", "p95 ms", "p99 ms", "Max ms"]);
    let mut counts = Vec::new();
    for name in phases {
        let full = format!("phase.{name}");
        let (count, row) = match snap.histogram(&full) {
            Some(h) => (
                h.count,
                [
                    full.clone(),
                    h.count.to_string(),
                    format!("{:.3}", h.p50 as f64 / 1e6),
                    format!("{:.3}", h.p95 as f64 / 1e6),
                    format!("{:.3}", h.p99 as f64 / 1e6),
                    format!("{:.3}", h.max as f64 / 1e6),
                ],
            ),
            None => (0, [full.clone(), "0".into(), "-".into(), "-".into(), "-".into(), "-".into()]),
        };
        t.row(row);
        counts.push((full, count));
    }
    print!("{}", t.render());
    counts
}

fn stage_out(path: &str, up: &vq_client::UploadOutcome) -> IngestStageOut {
    let batches = up.batches.max(1) as f64;
    IngestStageOut {
        path: path.to_string(),
        upload_secs: up.elapsed.as_secs_f64(),
        batches: up.batches,
        conversion_ms_per_batch: up.conversion.as_secs_f64() * 1e3 / batches,
        rpc_ms_per_batch: up.rpc.as_secs_f64() * 1e3 / batches,
    }
}

/// Live cluster telemetry run (opt-in; real worker threads on this
/// machine). Uploads a small dataset, fires a query burst, then dumps
/// each worker's `WorkerInfo` — including `coordinator_saturations` and
/// the upsert/search/coordination phase timers — in both the text table
/// and the machine-readable `results/live.json`.
fn print_live(json: bool, check: bool) {
    use vq_client::{LiveQueryRunner, LiveUploader};
    use vq_cluster::{Cluster, ClusterConfig};
    use vq_collection::CollectionConfig;
    use vq_core::Distance;
    use vq_workload::{DatasetSpec, EmbeddingModel};

    section("Live cluster telemetry: per-phase timings and coordinator saturation");
    let workers = 4u32;
    let n = 2_000u64;
    let corpus = CorpusSpec::small(10_000);
    let model = EmbeddingModel::small(&corpus, 32);
    let dataset = DatasetSpec::with_vectors(corpus, model, n);
    // `journal(true)`: an in-memory WAL per worker, so the durability
    // phase (`phase.wal_sync`) shows up in the trace without disk I/O.
    let collection = CollectionConfig::new(32, Distance::Cosine)
        .max_segment_points(512)
        .journal(true);
    let cluster = Cluster::start(ClusterConfig::new(workers), collection).unwrap();

    let up = LiveUploader::new(32, workers).upload(&cluster, &dataset).unwrap();
    let queries: Vec<Vec<f32>> = (0..512).map(|i| dataset.point(i % n).vector).collect();
    let q = LiveQueryRunner::new(16, 5).run(&cluster, &queries).unwrap();

    let mut client = cluster.client();
    let info = client.worker_info().unwrap();
    cluster.shutdown();

    // Same dataset through the columnar block path, on a fresh cluster,
    // for the conversion/RPC stage comparison.
    let block_cluster = Cluster::start(
        ClusterConfig::new(workers),
        CollectionConfig::new(32, Distance::Cosine)
            .max_segment_points(512)
            .journal(true),
    )
    .unwrap();
    let up_block = LiveUploader::new(32, workers)
        .columnar()
        .upload(&block_cluster, &dataset)
        .unwrap();
    block_cluster.shutdown();
    let ingest = vec![stage_out("per_point", &up), stage_out("block", &up_block)];

    println!(
        "upload: {} points in {} ({} batches); queries: {} in {}",
        up.points,
        human_secs(up.elapsed.as_secs_f64()),
        up.batches,
        queries.len(),
        human_secs(q.elapsed.as_secs_f64()),
    );
    let mut stage_table = TextTable::new(["Path", "Upload s", "Conversion ms/batch", "RPC ms/batch"]);
    for s in &ingest {
        stage_table.row([
            s.path.clone(),
            format!("{:.3}", s.upload_secs),
            format!("{:.3}", s.conversion_ms_per_batch),
            format!("{:.3}", s.rpc_ms_per_batch),
        ]);
    }
    print!("{}", stage_table.render());
    println!("(the paper's Python client profiles 45.64 ms conversion / 14.86 ms RPC per 32-batch; the columnar path shrinks the conversion share)");
    let mut t = TextTable::new([
        "Worker", "Upserts", "Searches", "Coordinations", "Saturations", "Upsert ms",
        "Search ms", "Coord ms",
    ]);
    for w in &info {
        t.row([
            w.worker.to_string(),
            w.upsert_batches.to_string(),
            w.search_batches.to_string(),
            w.coordinations.to_string(),
            w.coordinator_saturations.to_string(),
            format!("{:.1}", w.upsert_nanos as f64 / 1e6),
            format!("{:.1}", w.search_nanos as f64 / 1e6),
            format!("{:.1}", w.coordination_nanos as f64 / 1e6),
        ]);
    }
    print!("{}", t.render());
    println!("(coordination time ≫ local search time on the coordinator = broadcast–reduce wait, the §3.4 bottleneck; saturations > 0 = the coordinator pool queue overflowed)");

    let mean_ms = q.mean_latency().map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
    let p95_ms = q
        .latency_percentile(95.0)
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(0.0);

    // Per-phase latency percentiles from the flight recorder — the same
    // run the mean-based tables above summarize, now with tails. The
    // paper's Table 3 / Figure 2 cells are means; tails are where the
    // coordinator queueing story (§3.4) actually shows.
    let phases = [
        "upsert", "search", "gather", "coordination", "wal_sync", "client_batch",
        "point_convert", "block_convert", "upsert_rpc",
    ];
    let mut phase_counts = Vec::new();
    if let Some(snap) = vq_obs::snapshot() {
        println!("phase latency percentiles (flight recorder):");
        phase_counts = print_phase_percentiles(&snap, &phases);
    } else {
        println!("(recorder disabled via VQ_OBS=0 — no phase percentiles)");
    }

    emit(
        json,
        "live",
        &LiveOut {
            workers,
            points: n,
            queries: queries.len() as u64,
            upload_secs: up.elapsed.as_secs_f64(),
            upload_batches: up.batches,
            query_secs: q.elapsed.as_secs_f64(),
            mean_batch_latency_ms: mean_ms,
            p95_batch_latency_ms: p95_ms,
            ingest,
            worker_info: info,
            metrics: obs_metrics_json(),
        },
    );

    if check {
        // The obs-smoke contract: every instrumented phase along the
        // upload + query + ingest-comparison paths actually recorded.
        let must_record = ["upsert", "search", "gather", "wal_sync", "block_convert"];
        let criteria: Vec<(String, bool)> = must_record
            .iter()
            .map(|p| {
                let full = format!("phase.{p}");
                let seen = phase_counts.iter().any(|(n, c)| *n == full && *c > 0);
                (format!("{full} recorded at least once"), seen)
            })
            .collect();
        let criteria: Vec<(&str, bool)> =
            criteria.iter().map(|(n, ok)| (n.as_str(), *ok)).collect();
        enforce_shapes("live", &criteria);
    }
}

#[derive(Serialize)]
struct IngestOut {
    path: String,
    points: u64,
    dim: usize,
    secs: f64,
    points_per_sec: f64,
    /// WAL durability syncs: `points` on the per-point path, one per
    /// block on the columnar path (group commit).
    wal_syncs: u64,
}

#[derive(Serialize)]
struct IngestReport {
    /// One row per ingest path (per-point reference, then block).
    runs: Vec<IngestOut>,
    /// Full `vq-obs` registry snapshot for the run (`null` when the
    /// recorder is disabled via `VQ_OBS=0`).
    metrics: serde_json::Value,
}

/// Per-point vs columnar-block ingest into a WAL-backed collection — the
/// contiguous-slab case where the block path must never lose. `--check`
/// enforces exactly that (the CI `ingest-bench-smoke` contract);
/// `--scale` shrinks the point count for smoke runs. Criterion-grade
/// numbers live in `benches/ingest.rs` / `BENCH_INGEST.json`; this is
/// the assertable end-to-end version.
fn print_ingest(json: bool, check: bool, scale: f64) {
    use std::time::Instant;
    use vq_collection::{CollectionConfig, LocalCollection};
    use vq_core::Distance;
    use vq_storage::{FileBackend, Wal};
    use vq_workload::{DatasetSpec, EmbeddingModel};

    section("Ingest paths: per-point reference vs columnar block (WAL group commit)");
    let dim = 256usize;
    let n = scaled(10_000, scale, 256);
    let corpus = CorpusSpec::small(n);
    let model = EmbeddingModel::small(&corpus, dim);
    let dataset = DatasetSpec::with_vectors(corpus, model, n);
    let points = dataset.points_in(0..n);
    let t0 = std::time::Instant::now();
    let block = vq_client::convert_block(&points).expect("dataset batches are never ragged");
    vq_obs::record_phase("block_convert", 0, t0.elapsed().as_secs_f64());
    assert!(block.as_contiguous().is_some(), "contiguous-slab case");

    let tmp = std::env::temp_dir().join(format!("vq-repro-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create WAL dir");
    let config = CollectionConfig::new(dim, Distance::Euclid).max_segment_points(4096);

    let wal = Wal::with_backend(Box::new(
        FileBackend::open(tmp.join("per_point.wal")).expect("open per-point WAL"),
    ));
    let per_point = LocalCollection::with_wal(config, wal);
    let t0 = Instant::now();
    per_point.upsert_batch(points.clone()).expect("per-point ingest");
    let per_point_secs = t0.elapsed().as_secs_f64();
    let per_point_syncs = per_point.wal_synced_batches().unwrap_or(0);

    let wal = Wal::with_backend(Box::new(
        FileBackend::open(tmp.join("block.wal")).expect("open block WAL"),
    ));
    let columnar = LocalCollection::with_wal(config, wal);
    let t0 = Instant::now();
    columnar.upsert_block(&block).expect("block ingest");
    let block_secs = t0.elapsed().as_secs_f64();
    let block_syncs = columnar.wal_synced_batches().unwrap_or(0);

    // The optimization must not change state: spot-check equivalence
    // before reporting numbers for it.
    assert_eq!(per_point.len(), columnar.len(), "both paths ingested everything");
    let probe = (n / 2).min(n.saturating_sub(1));
    assert_eq!(
        per_point.get(probe).map(|p| p.vector),
        columnar.get(probe).map(|p| p.vector),
        "mid-dataset point must be bit-identical on both paths"
    );
    let _ = std::fs::remove_dir_all(&tmp);

    let out = vec![
        IngestOut {
            path: "per_point".into(),
            points: n,
            dim,
            secs: per_point_secs,
            points_per_sec: n as f64 / per_point_secs.max(1e-12),
            wal_syncs: per_point_syncs,
        },
        IngestOut {
            path: "block".into(),
            points: n,
            dim,
            secs: block_secs,
            points_per_sec: n as f64 / block_secs.max(1e-12),
            wal_syncs: block_syncs,
        },
    ];
    let mut t = TextTable::new(["Path", "Points", "Seconds", "Points/s", "WAL syncs"]);
    for row in &out {
        t.row([
            row.path.clone(),
            row.points.to_string(),
            format!("{:.4}", row.secs),
            format!("{:.0}", row.points_per_sec),
            row.wal_syncs.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "block vs per-point: {:.2}x throughput, {} vs {} durability syncs",
        out[1].points_per_sec / out[0].points_per_sec.max(1e-12),
        out[1].wal_syncs,
        out[0].wal_syncs,
    );
    if let Some(snap) = vq_obs::snapshot() {
        println!("phase latency percentiles (flight recorder):");
        print_phase_percentiles(&snap, &["wal_sync", "block_convert"]);
    }
    emit(
        json,
        "ingest",
        &IngestReport {
            runs: out,
            metrics: obs_metrics_json(),
        },
    );

    if check {
        enforce_shapes(
            "ingest",
            &[
                ("block path never slower than per-point on a contiguous slab",
                 block_secs <= per_point_secs),
                ("block path group-commits one sync per block", block_syncs == 1),
                ("per-point path syncs once per point", per_point_syncs == n),
            ],
        );
    }
}

#[derive(Serialize)]
struct ChaosOut {
    transport: String,
    workers: u32,
    replication: u32,
    kill_restart_cycles: u32,
    points_acked: u64,
    upserts_rejected: u64,
    post_recovery_count: u64,
    lost_acked_points: u64,
    worker_restarts: u64,
    failovers: u64,
    search_retries: u64,
    degraded_shards: Vec<vq_cluster::ShardId>,
    degraded_query_ms_max: f64,
    concurrent_searches: u64,
    metrics: serde_json::Value,
}

/// Upsert `range` of `dataset` in small batches, recording which ids the
/// cluster *acknowledged*. A rejected batch is counted, not retried —
/// the soak invariant is about acked writes only.
fn chaos_ingest<T: vq_net::Transport<vq_cluster::ClusterMsg>>(
    client: &mut vq_cluster::ClusterClient<T>,
    dataset: &vq_workload::DatasetSpec,
    range: std::ops::Range<u64>,
    acked: &mut Vec<u64>,
    rejected: &mut u64,
) {
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + 64).min(range.end);
        match client.upsert_batch(dataset.points_in(lo..hi)) {
            Ok(()) => acked.extend(lo..hi),
            Err(_) => *rejected += hi - lo,
        }
        lo = hi;
    }
}

/// Seeded chaos soak (PR 3's flaky-shutdown repro, promoted): a
/// replicated, WAL-backed cluster ingests under a deterministic fault
/// plan while each worker in turn is killed mid-stream and restarted
/// from its snapshot + WAL. `--check` enforces the recovery contract:
///
/// * every acknowledged upsert is findable after all workers recover —
///   zero lost acked points;
/// * queries issued while workers are dead stay within the configured
///   deadline budget and report uncovered shards via `degraded` instead
///   of hanging or erroring.
fn print_chaos(json: bool, check: bool, scale: f64, tcp: bool) {
    use std::time::Duration;
    use vq_cluster::{Cluster, ClusterConfig, Deadlines, Durability};
    use vq_collection::CollectionConfig;
    use vq_core::Distance;
    use vq_net::{FaultPlan, TcpTransport};
    use vq_workload::{DatasetSpec, EmbeddingModel};

    section(&format!(
        "Chaos soak ({} fabric): seeded faults, kill/restart under load, zero lost acked writes",
        if tcp { "TCP" } else { "in-proc" }
    ));
    let workers = 3u32;
    let replication = 2u32;
    let dim = 16usize;
    let n = scaled(3_000, scale, 300);
    let corpus = CorpusSpec::small(n);
    let model = EmbeddingModel::small(&corpus, dim);
    let dataset = DatasetSpec::with_vectors(corpus, model, n);

    let deadlines = Deadlines {
        request: Duration::from_secs(5),
        gather: Duration::from_millis(500),
        index_build: Duration::from_secs(60),
        retry_backoff: Duration::from_millis(5),
    };
    // Background noise, not outage: the seeded plan delays and duplicates
    // a few percent of frames on every edge (same seed → same rolls).
    // Outages come from `kill_worker` below.
    let faults = FaultPlan::new(42)
        .delay_on(None, None, 0.05, Duration::from_millis(2))
        .duplicate_on(None, None, 0.03);
    let cluster_config = ClusterConfig::new(workers)
        .replication(replication)
        .deadlines(deadlines)
        .durability(Durability::SharedMem)
        .faults(faults);
    let collection_config = CollectionConfig::new(dim, Distance::Cosine).max_segment_points(256);
    // The soak body is transport-generic; only the fabric start differs.
    if tcp {
        let cluster = Cluster::start_on(TcpTransport::new(), cluster_config, collection_config)
            .expect("cluster start");
        run_chaos_soak(cluster, "tcp", &dataset, deadlines, n, workers, replication, json, check);
    } else {
        let cluster = Cluster::start(cluster_config, collection_config).expect("cluster start");
        run_chaos_soak(
            cluster, "inproc", &dataset, deadlines, n, workers, replication, json, check,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chaos_soak<T: vq_net::Transport<vq_cluster::ClusterMsg> + 'static>(
    cluster: std::sync::Arc<vq_cluster::Cluster<T>>,
    transport: &str,
    dataset: &vq_workload::DatasetSpec,
    deadlines: vq_cluster::Deadlines,
    n: u64,
    workers: u32,
    replication: u32,
    json: bool,
    check: bool,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use vq_collection::SearchRequest;

    let mut client = cluster.client();

    // Concurrent read load across the whole kill/restart phase: retries
    // and replica failover must absorb every outage — the searcher never
    // sees an error, at worst degraded coverage.
    let stop = Arc::new(AtomicBool::new(false));
    let searcher = {
        let cluster = cluster.clone();
        let stop = stop.clone();
        let probe = dataset.point(0).vector;
        std::thread::spawn(move || {
            let mut client = cluster.client();
            let mut ok = 0u64;
            while !stop.load(Ordering::Relaxed) {
                client
                    .search_batch_outcome(vec![SearchRequest::new(probe.clone(), 5)])
                    .expect("concurrent search survives kill/restart");
                ok += 1;
            }
            ok
        })
    };

    // Kill/restart cycle: each worker dies once, mid-ingest. Writes keep
    // flowing while it is down (replication 2 → every shard keeps a live
    // owner), and the replacement recovers from snapshot + WAL replay.
    let mut acked: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    let slice = n.max(2 * workers as u64) / (2 * workers as u64);
    for victim in 0..workers {
        let base = victim as u64 * 2 * slice;
        chaos_ingest(&mut client, &dataset, base..base + slice, &mut acked, &mut rejected);
        cluster.kill_worker(victim).expect("victim is tracked");
        chaos_ingest(
            &mut client,
            &dataset,
            base + slice..base + 2 * slice,
            &mut acked,
            &mut rejected,
        );
        // A search mid-outage must still answer: the surviving replicas
        // cover every shard, so coverage is full, not degraded.
        let probe = SearchRequest::new(dataset.point(base % n).vector, 5);
        let out = client
            .search_batch_outcome(vec![probe])
            .expect("replicated search during a single-worker outage");
        assert!(
            out.degraded.is_empty(),
            "one dead worker of three must not lose shard coverage at replication 2"
        );
        cluster.restart_worker(victim).expect("replacement comes up");
    }
    chaos_ingest(
        &mut client,
        &dataset,
        (2 * slice * workers as u64).min(n)..n,
        &mut acked,
        &mut rejected,
    );

    stop.store(true, Ordering::Relaxed);
    let concurrent_searches = searcher.join().expect("searcher thread clean exit");

    // Recovery verification: everything the cluster acked is findable.
    let post_count = client.count(None).expect("count after recovery") as u64;
    let mut lost = 0u64;
    for &id in acked.iter().step_by(7) {
        if client.get(id).expect("get after recovery").is_none() {
            lost += 1;
        }
    }

    // Degraded phase: two of three workers down → some shards lose every
    // owner. Queries must answer within the deadline budget and report
    // the uncovered shards rather than hang.
    cluster.kill_worker(0).expect("worker 0 tracked");
    cluster.kill_worker(1).expect("worker 1 tracked");
    let budget = deadlines.request + deadlines.gather + Duration::from_secs(1);
    let mut degraded_union: std::collections::BTreeSet<vq_cluster::ShardId> =
        std::collections::BTreeSet::new();
    let mut degraded_ms_max = 0.0f64;
    let mut all_bounded = true;
    for i in 0..8u64 {
        let q = SearchRequest::new(dataset.point((i * 37) % n).vector, 5);
        let t0 = Instant::now();
        let out = client
            .search_batch_outcome(vec![q])
            .expect("degraded search still answers");
        let elapsed = t0.elapsed();
        degraded_ms_max = degraded_ms_max.max(elapsed.as_secs_f64() * 1e3);
        all_bounded &= elapsed < budget;
        degraded_union.extend(out.degraded.iter().copied());
    }
    let degraded_shards: Vec<vq_cluster::ShardId> = degraded_union.into_iter().collect();
    let restarts = cluster.worker_restart_count();
    let failovers = cluster.failover_count();
    let retries = cluster.search_retry_count();
    cluster.shutdown();

    println!(
        "acked {} upserts ({} rejected) across {} kill/restart cycles; post-recovery count {}; {} sampled acked points missing",
        acked.len(),
        rejected,
        workers,
        post_count,
        lost,
    );
    println!(
        "two-workers-down queries: max {:.1} ms (budget {:.0} ms), degraded shards {:?}",
        degraded_ms_max,
        budget.as_secs_f64() * 1e3,
        degraded_shards,
    );
    println!(
        "counters: {} restarts, {} failovers, {} search retries; {} concurrent searches, none errored",
        restarts, failovers, retries, concurrent_searches,
    );
    let mut phase_counts = Vec::new();
    if let Some(snap) = vq_obs::snapshot() {
        println!("phase latency percentiles (flight recorder):");
        phase_counts = print_phase_percentiles(&snap, &["wal_replay", "gather", "upsert", "search"]);
    }

    emit(
        json,
        if transport == "tcp" { "chaos_tcp" } else { "chaos" },
        &ChaosOut {
            transport: transport.to_string(),
            workers,
            replication,
            kill_restart_cycles: workers,
            points_acked: acked.len() as u64,
            upserts_rejected: rejected,
            post_recovery_count: post_count,
            lost_acked_points: lost,
            worker_restarts: restarts,
            failovers,
            search_retries: retries,
            degraded_shards: degraded_shards.clone(),
            degraded_query_ms_max: degraded_ms_max,
            concurrent_searches,
            metrics: obs_metrics_json(),
        },
    );

    if check {
        let replayed = phase_counts
            .iter()
            .any(|(name, c)| name == "phase.wal_replay" && *c > 0);
        enforce_shapes(
            "chaos",
            &[
                ("zero acked points lost after kill/restart recovery", lost == 0),
                (
                    "no upsert rejected while every shard kept a live replica",
                    rejected == 0,
                ),
                (
                    "post-recovery count equals acked upserts",
                    post_count == acked.len() as u64,
                ),
                (
                    "every kill/restart cycle recorded a worker restart",
                    restarts == workers as u64,
                ),
                (
                    "writes failed over to replicas while their primary was down",
                    failovers > 0,
                ),
                (
                    "two dead workers of three leave shards reported as degraded",
                    !degraded_shards.is_empty(),
                ),
                (
                    "degraded queries stay within the deadline budget",
                    all_bounded,
                ),
                (
                    "restart recovery replayed the WAL (phase.wal_replay recorded)",
                    replayed,
                ),
                (
                    "concurrent searches survived every kill/restart",
                    concurrent_searches > 0,
                ),
            ],
        );
    }
}

#[derive(Serialize)]
struct HealOut {
    transport: String,
    workers: u32,
    replication: u32,
    points_acked: u64,
    upserts_rejected: u64,
    post_recovery_count: u64,
    lost_acked_points: u64,
    transient_heal_ms: f64,
    detection_ms: f64,
    restart_ms: f64,
    rebuild_ms: f64,
    suspicions: u64,
    autonomous_restarts: u64,
    operator_restarts: u64,
    rebuilds_queued: u64,
    rebuilds_completed: u64,
    rebuilds_failed: u64,
    replication_restored: bool,
    concurrent_searches: u64,
    metrics: serde_json::Value,
}

/// Poll `cond` every 2 ms until it holds or `budget` elapses; returns the
/// elapsed time on success.
fn wait_until(
    budget: std::time::Duration,
    mut cond: impl FnMut() -> bool,
) -> Option<std::time::Duration> {
    let t0 = std::time::Instant::now();
    loop {
        if cond() {
            return Some(t0.elapsed());
        }
        if t0.elapsed() >= budget {
            return None;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// Self-healing soak (PR 10's heal-smoke contract): a replicated cluster
/// with the failure detector + stabilizer enabled absorbs two kinds of
/// failure with **zero operator calls**:
///
/// * a transient fault — the seeded plan refuses the first two frames to
///   worker 1, which must leave it Suspect, get it re-probed back to
///   Alive, and re-sync the writes it missed (the PR 10 regression: the
///   legacy dead-set marked it dead forever on one refused frame);
/// * a hard crash — `crash_worker` yanks worker 2 without telling the
///   cluster; detection, autonomous restart, and shard rebuild from live
///   replicas all have to happen on their own.
///
/// `--check` enforces bounded detection, ≥ 1 autonomous restart, ≥ 1
/// completed rebuild, zero lost acked writes, per-shard replica counts
/// equal again afterwards, and `worker_restart_count() == 0`.
fn print_heal(json: bool, check: bool, scale: f64, tcp: bool) {
    use std::time::Duration;
    use vq_cluster::{Cluster, ClusterConfig, Deadlines, Durability, HealConfig};
    use vq_collection::CollectionConfig;
    use vq_core::Distance;
    use vq_net::{FaultPlan, TcpTransport};
    use vq_workload::{DatasetSpec, EmbeddingModel};

    section(&format!(
        "Self-healing soak ({} fabric): crash under load, autonomous detection/restart/rebuild",
        if tcp { "TCP" } else { "in-proc" }
    ));
    let workers = 3u32;
    let replication = 2u32;
    let dim = 16usize;
    let n = scaled(2_400, scale, 300);
    let corpus = CorpusSpec::small(n);
    let model = EmbeddingModel::small(&corpus, dim);
    let dataset = DatasetSpec::with_vectors(corpus, model, n);

    let deadlines = Deadlines {
        request: Duration::from_secs(5),
        gather: Duration::from_millis(500),
        index_build: Duration::from_secs(60),
        retry_backoff: Duration::from_millis(5),
    };
    // Same background noise as the chaos soak, plus one deterministic
    // transient: the first two frames delivered to worker 1 bounce with a
    // connection-refused style error (sender-visible, unlike a drop).
    let faults = FaultPlan::new(42)
        .delay_on(None, None, 0.05, Duration::from_millis(2))
        .duplicate_on(None, None, 0.03)
        .refuse_on(None, Some(1), 2);
    // A 25 ms stabilizer tick keeps a safety margin between the last
    // write of an ingest slice and the earliest rebuild transfer (an
    // install overwrites the target shard, so the soak never writes while
    // a transfer can be in flight).
    let heal = HealConfig {
        heartbeat_every: Duration::from_millis(10),
        tick: Duration::from_millis(25),
        ..HealConfig::default()
    };
    let cluster_config = ClusterConfig::new(workers)
        .replication(replication)
        .deadlines(deadlines)
        .durability(Durability::SharedMem)
        .faults(faults)
        .heal(heal);
    let collection_config = CollectionConfig::new(dim, Distance::Cosine).max_segment_points(256);
    if tcp {
        let cluster = Cluster::start_on(TcpTransport::new(), cluster_config, collection_config)
            .expect("cluster start");
        run_heal_soak(cluster, "tcp", &dataset, n, workers, replication, json, check);
    } else {
        let cluster = Cluster::start(cluster_config, collection_config).expect("cluster start");
        run_heal_soak(cluster, "inproc", &dataset, n, workers, replication, json, check);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_heal_soak<T: vq_net::Transport<vq_cluster::ClusterMsg> + 'static>(
    cluster: std::sync::Arc<vq_cluster::Cluster<T>>,
    transport: &str,
    dataset: &vq_workload::DatasetSpec,
    n: u64,
    workers: u32,
    replication: u32,
    json: bool,
    check: bool,
) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use vq_cluster::{Request, Response, WorkerHealth};
    use vq_collection::SearchRequest;

    let transient = 1u32; // target of the seeded refusals
    let victim = 2u32; // crashed later, detector must notice
    let budget = Duration::from_secs(30);
    let mut client = cluster.client();
    let mut acked: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    let slice = n / 3;

    // Phase 1 — transient fault. The first frames to worker 1 are the
    // slice's replicated writes: two bounce, the client fails over and
    // marks it Suspect, and the stabilizer must probe it back to Alive
    // and re-sync the missed writes — all without `restart_worker`.
    chaos_ingest(&mut client, dataset, 0..slice, &mut acked, &mut rejected);
    let transient_heal = wait_until(budget, || {
        cluster.worker_health(transient) == WorkerHealth::Alive
            && cluster.dead_workers().is_empty()
            && cluster.pending_rebuilds() == 0
    });
    let transient_heal_ms = transient_heal.map_or(f64::INFINITY, |d| d.as_secs_f64() * 1e3);
    let transient_suspected = cluster.suspicion_count() >= 1;
    let transient_without_restart =
        cluster.worker_restart_count() == 0 && cluster.autonomous_restart_count() == 0;
    println!(
        "transient refusal on worker {transient}: suspected={transient_suspected}, healed in {transient_heal_ms:.0} ms, restarts used: 0"
    );

    // Concurrent read load across the crash: retries and replica failover
    // absorb the outage — the searcher never sees an error.
    let stop = Arc::new(AtomicBool::new(false));
    let searcher = {
        let cluster = cluster.clone();
        let stop = stop.clone();
        let probe = dataset.point(0).vector;
        std::thread::spawn(move || {
            let mut client = cluster.client();
            let mut ok = 0u64;
            while !stop.load(Ordering::Relaxed) {
                client
                    .search_batch_outcome(vec![SearchRequest::new(probe.clone(), 5)])
                    .expect("concurrent search survives the crash");
                ok += 1;
            }
            ok
        })
    };

    // Phase 2 — hard crash, no notification. Detection comes from the
    // health machinery alone: heartbeat silence trips the phi detector,
    // and any failed send from live traffic marks the worker Suspect.
    let restarts_before = cluster.autonomous_restart_count();
    let t_crash = std::time::Instant::now();
    cluster.crash_worker(victim).expect("victim is tracked");
    let detection = wait_until(budget, || {
        cluster.worker_health(victim) != WorkerHealth::Alive
    });
    let detection_ms = detection.map_or(f64::INFINITY, |d| d.as_secs_f64() * 1e3);
    // Writes keep flowing while the victim is down (replication 2 keeps a
    // live owner per shard); the missed writes are the rebuild's job.
    chaos_ingest(&mut client, dataset, slice..2 * slice, &mut acked, &mut rejected);
    let restart =
        wait_until(budget, || cluster.autonomous_restart_count() > restarts_before);
    let restart_ms = restart.map_or(f64::INFINITY, |_| t_crash.elapsed().as_secs_f64() * 1e3);
    let rebuild = wait_until(budget, || {
        cluster.worker_health(victim) == WorkerHealth::Alive && cluster.pending_rebuilds() == 0
    });
    let rebuild_ms = rebuild.map_or(f64::INFINITY, |_| t_crash.elapsed().as_secs_f64() * 1e3);
    println!(
        "crash of worker {victim}: detected in {detection_ms:.0} ms, restarted by {restart_ms:.0} ms, rebuilt by {rebuild_ms:.0} ms"
    );

    // Phase 3 — the healed cluster takes the rest of the dataset.
    chaos_ingest(&mut client, dataset, 2 * slice..n, &mut acked, &mut rejected);
    stop.store(true, Ordering::Relaxed);
    let concurrent_searches = searcher.join().expect("searcher thread clean exit");

    // Every acked write is findable (`get` asks the shard's primary, so
    // this also proves re-synced replicas serve reads).
    let post_count = client.count(None).expect("count after heal") as u64;
    let mut lost = 0u64;
    for &id in acked.iter().step_by(7) {
        if client.get(id).expect("get after heal").is_none() {
            lost += 1;
        }
    }
    // Replication restored: every replica of every shard the victim owns
    // reports the same live-point count again.
    let placement = cluster.placement();
    let mut replication_restored = true;
    for shard in placement.shards_of(victim) {
        let owners = placement.owners_of(shard).expect("placed shard").to_vec();
        let mut counts = Vec::new();
        for w in owners {
            match client.request(w, Request::Count { shard: Some(shard), filter: None }) {
                Ok(Response::Count(c)) => counts.push(c),
                _ => replication_restored = false,
            }
        }
        replication_restored &= counts.windows(2).all(|pair| pair[0] == pair[1]);
    }

    let suspicions = cluster.suspicion_count();
    let autonomous_restarts = cluster.autonomous_restart_count();
    let operator_restarts = cluster.worker_restart_count();
    let (rebuilds_queued, rebuilds_completed, rebuilds_failed) = cluster.rebuild_counts();
    cluster.shutdown();

    println!(
        "acked {} upserts ({} rejected); post-heal count {}; {} sampled acked points missing; replicas consistent: {}",
        acked.len(),
        rejected,
        post_count,
        lost,
        replication_restored,
    );
    println!(
        "counters: {suspicions} suspicions, {autonomous_restarts} autonomous restarts, {operator_restarts} operator restarts, rebuilds {rebuilds_queued} queued / {rebuilds_completed} completed / {rebuilds_failed} failed; {concurrent_searches} concurrent searches, none errored"
    );
    if let Some(snap) = vq_obs::snapshot() {
        println!("phase latency percentiles (flight recorder):");
        print_phase_percentiles(&snap, &["wal_replay", "rebuild", "gather", "upsert", "search"]);
    }

    emit(
        json,
        if transport == "tcp" { "heal_tcp" } else { "heal" },
        &HealOut {
            transport: transport.to_string(),
            workers,
            replication,
            points_acked: acked.len() as u64,
            upserts_rejected: rejected,
            post_recovery_count: post_count,
            lost_acked_points: lost,
            transient_heal_ms,
            detection_ms,
            restart_ms,
            rebuild_ms,
            suspicions,
            autonomous_restarts,
            operator_restarts,
            rebuilds_queued,
            rebuilds_completed,
            rebuilds_failed,
            replication_restored,
            concurrent_searches,
            metrics: obs_metrics_json(),
        },
    );

    if check {
        enforce_shapes(
            "heal",
            &[
                (
                    "transient refusal raised a suspicion, not a permanent death",
                    transient_suspected,
                ),
                (
                    "transiently refused worker was re-probed back to Alive and routed again",
                    transient_heal_ms.is_finite(),
                ),
                (
                    "transient heal used zero restarts of any kind",
                    transient_without_restart,
                ),
                (
                    "crashed worker detected autonomously within 10 s",
                    detection_ms.is_finite() && detection_ms <= 10_000.0,
                ),
                (
                    "at least one autonomous restart (cluster.autonomous_restarts >= 1)",
                    autonomous_restarts >= 1,
                ),
                (
                    "at least one completed rebuild (cluster.rebuilds_completed >= 1)",
                    rebuilds_completed >= 1,
                ),
                (
                    "rejoined worker promoted to Alive with the rebuild queue drained",
                    rebuild_ms.is_finite(),
                ),
                ("zero operator restart_worker calls", operator_restarts == 0),
                ("zero acked points lost across transient + crash", lost == 0),
                (
                    "post-heal count equals acked upserts",
                    post_count == acked.len() as u64,
                ),
                (
                    "replica counts equal again on every victim-owned shard",
                    replication_restored,
                ),
                (
                    "concurrent searches survived the crash window",
                    concurrent_searches > 0,
                ),
            ],
        );
    }
}

#[derive(Serialize)]
struct ProtocolOut {
    dim: usize,
    points: u64,
    batch_points: usize,
    queries: usize,
    rest_upsert_ms_p50: f64,
    bin_upsert_ms_p50: f64,
    inproc_search_ms_p50: f64,
    rest_search_ms_p50: f64,
    bin_search_ms_p50: f64,
    rest_bytes_per_point: f64,
    bin_bytes_per_point: f64,
    identical_results: bool,
    metrics: serde_json::Value,
}

fn p50_of(samples: &mut Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples.get(samples.len() / 2).copied().unwrap_or(0.0)
}

/// REST-vs-binary serving ablation over loopback: the same cluster, the
/// same batches and queries, once through Qdrant-style JSON over HTTP/1.1
/// and once through `vbin` frames carrying `PointBlock` slabs. `--check`
/// pins the shape this layer exists for: the binary hot path no slower
/// than REST at p50 for upsert+search combined, fewer bytes per point on
/// the wire, and — the correctness half — results bit-identical across
/// the in-proc client, the binary client, and the REST client.
fn print_protocol(json: bool, check: bool, scale: f64) {
    use std::sync::Arc;
    use std::time::Instant;
    use vq_cluster::{Cluster, ClusterConfig};
    use vq_collection::{CollectionConfig, SearchRequest};
    use vq_core::{Distance, PointBlock};
    use vq_net::wire;
    use vq_server::{
        client::points_body, BinClient, BinRequest, ClusterBackend, Registry, RestClient,
        ServerConfig, VqServer,
    };
    use vq_workload::{DatasetSpec, EmbeddingModel};

    section("Serving-protocol ablation: Qdrant-style REST JSON vs framed binary (vbin)");
    let dim = 32usize;
    let n = scaled(4_096, scale, 512);
    let batch = 256usize;
    let queries = 64usize;
    let corpus = CorpusSpec::small(n);
    let model = EmbeddingModel::small(&corpus, dim);
    let dataset = DatasetSpec::with_vectors(corpus, model, n);

    // Three collections on one server: `bench` is populated once through
    // the in-proc client and queried by every path; `via_rest`/`via_bin`
    // take identical upsert streams so the per-batch latencies differ
    // only in protocol.
    let start_cluster = || {
        Cluster::start(
            ClusterConfig::new(2).shards(2),
            CollectionConfig::new(dim, Distance::Cosine),
        )
        .expect("cluster start")
    };
    let bench = start_cluster();
    let via_rest = start_cluster();
    let via_bin = start_cluster();
    let registry = Arc::new(Registry::new());
    registry.insert("bench", Arc::new(ClusterBackend::new(bench.clone())));
    registry.insert("via_rest", Arc::new(ClusterBackend::new(via_rest.clone())));
    registry.insert("via_bin", Arc::new(ClusterBackend::new(via_bin.clone())));
    let mut server = VqServer::serve(
        registry,
        &ServerConfig {
            rest_addr: "127.0.0.1:0".to_string(),
            bin_addr: Some("127.0.0.1:0".to_string()),
        },
    )
    .expect("server start");

    let mut inproc = bench.client();
    inproc
        .upsert_batch(dataset.points_in(0..n))
        .expect("populate bench");

    let mut rest = RestClient::connect(server.rest_addr()).expect("rest connect");
    let mut bin = BinClient::connect(server.bin_addr().expect("binary port on")).expect("bin connect");

    // Upsert path: same batches through both protocols, interleaved so
    // neither side systematically sees a colder cluster.
    let mut rest_upsert_ms = Vec::new();
    let mut bin_upsert_ms = Vec::new();
    let mut lo = 0u64;
    while lo < n {
        let hi = (lo + batch as u64).min(n);
        let points = dataset.points_in(lo..hi);
        let t0 = Instant::now();
        rest.upsert_points("via_rest", &points).expect("rest upsert");
        rest_upsert_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        bin.upsert_points("via_bin", &points).expect("bin upsert");
        bin_upsert_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        lo = hi;
    }

    // Wire weight of one batch, exactly as each protocol frames it.
    let sample = dataset.points_in(0..(batch as u64).min(n));
    let rest_bytes = points_body(&sample).len();
    let bin_frame = wire::encode_frame(
        &wire::to_bytes(&BinRequest::Upsert {
            collection: "via_bin".to_string(),
            block: PointBlock::from_points(&sample).expect("block"),
        })
        .expect("encode"),
    );
    let rest_bytes_per_point = rest_bytes as f64 / sample.len() as f64;
    let bin_bytes_per_point = bin_frame.len() as f64 / sample.len() as f64;

    // Search path: identical probes, three access paths. A short warmup
    // keeps connection setup and first-touch costs out of the samples.
    let probe_at = |i: usize| dataset.point((i as u64 * 13) % n).vector;
    for i in 0..4 {
        let request = SearchRequest::new(probe_at(i), 10);
        inproc.search(request.clone()).expect("warmup");
        rest.search("bench", &request).expect("warmup");
        bin.search("bench", &request).expect("warmup");
    }
    let mut inproc_ms = Vec::new();
    let mut rest_ms = Vec::new();
    let mut bin_ms = Vec::new();
    let mut identical = true;
    for i in 0..queries {
        let mut request = SearchRequest::new(probe_at(i), 10);
        // Exercise the payload-bearing shape on half the probes — payload
        // JSON is part of what REST pays for.
        request.with_payload = i % 2 == 0;
        let t0 = Instant::now();
        let direct = inproc.search(request.clone()).expect("in-proc search");
        inproc_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let via_rest_hits = rest.search("bench", &request).expect("rest search");
        rest_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let via_bin_hits = bin.search("bench", &request).expect("bin search");
        bin_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        identical &= direct == via_bin_hits && direct == via_rest_hits && direct.len() == 10;
    }

    let out = ProtocolOut {
        dim,
        points: n,
        batch_points: batch,
        queries,
        rest_upsert_ms_p50: p50_of(&mut rest_upsert_ms),
        bin_upsert_ms_p50: p50_of(&mut bin_upsert_ms),
        inproc_search_ms_p50: p50_of(&mut inproc_ms),
        rest_search_ms_p50: p50_of(&mut rest_ms),
        bin_search_ms_p50: p50_of(&mut bin_ms),
        rest_bytes_per_point,
        bin_bytes_per_point,
        identical_results: identical,
        metrics: obs_metrics_json(),
    };

    server.shutdown();
    bench.shutdown();
    via_rest.shutdown();
    via_bin.shutdown();

    let mut t = TextTable::new(["Path", "Upsert p50 ms/batch", "Search p50 ms", "Bytes/point"]);
    t.row([
        "REST (JSON/HTTP)".to_string(),
        format!("{:.3}", out.rest_upsert_ms_p50),
        format!("{:.3}", out.rest_search_ms_p50),
        format!("{:.1}", out.rest_bytes_per_point),
    ]);
    t.row([
        "binary (vbin frames)".to_string(),
        format!("{:.3}", out.bin_upsert_ms_p50),
        format!("{:.3}", out.bin_search_ms_p50),
        format!("{:.1}", out.bin_bytes_per_point),
    ]);
    t.row([
        "in-proc client".to_string(),
        "-".to_string(),
        format!("{:.3}", out.inproc_search_ms_p50),
        "-".to_string(),
    ]);
    print!("{}", t.render());
    println!(
        "results bit-identical across in-proc / binary / REST: {}",
        out.identical_results
    );

    // BENCH_NET.json is the committed repo-root record of this ablation
    // (same convention as BENCH_PQ.json / BENCH_INGEST.json).
    let mut bench_net = serde_json::to_value(&out).expect("serializable");
    if let Some(map) = bench_net.as_object_mut() {
        map.insert(
            "description".to_string(),
            serde_json::to_value(
                "repro protocol: REST (Qdrant-compatible JSON over HTTP/1.1) vs framed \
                 binary (vbin + PointBlock slab) over loopback, same cluster and workload",
            )
            .expect("string"),
        );
        map.remove("metrics");
    }
    if std::fs::write(
        "BENCH_NET.json",
        serde_json::to_string_pretty(&bench_net).expect("render") + "\n",
    )
    .is_ok()
    {
        println!("wrote BENCH_NET.json");
    }
    emit(json, "protocol", &out);

    if check {
        enforce_shapes(
            "protocol",
            &[
                (
                    "in-proc, binary, and REST return bit-identical results",
                    out.identical_results,
                ),
                (
                    "binary p50 upsert+search no slower than REST",
                    out.bin_upsert_ms_p50 + out.bin_search_ms_p50
                        <= out.rest_upsert_ms_p50 + out.rest_search_ms_p50,
                ),
                (
                    "binary frames carry fewer bytes per point than REST JSON",
                    out.bin_bytes_per_point < out.rest_bytes_per_point,
                ),
                (
                    "both network paths acknowledged every upsert batch",
                    rest_upsert_ms.len() == bin_upsert_ms.len() && !rest_upsert_ms.is_empty(),
                ),
            ],
        );
    }
}

#[derive(Serialize, Clone)]
struct QuantizedDepthOut {
    rerank_depth: usize,
    recall_at_10: f64,
    query_us: f64,
}

#[derive(Serialize)]
struct QuantizedReport {
    dim: usize,
    points: usize,
    pq_m: usize,
    pq_ks: usize,
    quantized_segments: usize,
    build_secs: f64,
    depths: Vec<QuantizedDepthOut>,
    exact_query_us: f64,
    two_stage_query_us: f64,
    coarse_scan_us: Option<f64>,
    coarse_scan_speedup: Option<f64>,
    quantized_full_bytes: usize,
    quantized_resident_bytes: usize,
    resident_reduction: f64,
    metrics: serde_json::Value,
}

/// Quantized-resident memory hierarchy: sealed segments hold PQ codes in
/// RAM, spill full-precision vectors to a demand-paged tier, and serve
/// searches as SIMD coarse-scan + exact rerank. Opt-in only (trains real
/// PQ codebooks). `--check` enforces the BENCH_PQ.json acceptance floors
/// (the CI quantized-smoke contract): recall@10 ≥ 0.95 at some measured
/// rerank depth, ≥ 4x resident-byte reduction on quantized segments, the
/// coarse scan ≥ 2x faster than the exact scan it displaces (flight-
/// recorder phase timing), and two-stage at full depth *identical* to
/// exact. The byte-ratio floors are defined against the default tier
/// page budget (8 pages × 256 vectors), which below ~10k points would
/// cache the whole dataset — so `--scale` only grows this experiment,
/// never shrinks it.
fn print_quantized(json: bool, check: bool, scale: f64) {
    use rand::{Rng, SeedableRng};
    use std::time::Instant;
    use vq_collection::{
        CollectionConfig, IndexingPolicy, LocalCollection, QuantizationConfig, SearchRequest,
    };
    use vq_core::{Distance, Point};

    section("Quantized-resident search: SIMD PQ coarse scan + exact rerank");
    let dim = 512usize;
    let n = scaled(10_000, scale, 10_000) as usize;

    // Clustered corpus — what embedding corpora look like. Recall on
    // uniform noise measures distance concentration, not the codec: 128
    // centers with 0.25-sigma jitter, queries jittered around centers.
    // Same methodology and seed as BENCH_PQ.json.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(97);
    let centers: Vec<Vec<f32>> = (0..128)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut jitter = |c: &[f32]| -> Vec<f32> {
        c.iter()
            .map(|&x| x + rng.gen_range(-0.25f32..0.25))
            .collect()
    };
    let points: Vec<Point> = (0..n)
        .map(|i| Point::new(i as u64, jitter(&centers[i % centers.len()])))
        .collect();
    let queries: Vec<Vec<f32>> = (0..30)
        .map(|i| jitter(&centers[(i * 7) % centers.len()]))
        .collect();

    let pq_m = dim / 8;
    let config = CollectionConfig::new(dim, Distance::Euclid)
        .max_segment_points(n)
        .indexing(IndexingPolicy::Deferred)
        .quantization(QuantizationConfig::with_m(pq_m).ks(256).rerank_mult(4));
    let coll = LocalCollection::new(config);
    coll.upsert_batch(points).expect("ingest clustered corpus");
    coll.seal_active();
    let t0 = Instant::now();
    let built = coll
        .build_all_quantized()
        .expect("quantize sealed segments");
    let build_secs = t0.elapsed().as_secs_f64();
    println!(
        "quantized {built} segment(s): {n} x {dim} points, m={pq_m}, ks=256, {build_secs:.2}s to train+encode+spill"
    );

    // Exact ground truth through the same API — `exact` bypasses the
    // quantized path entirely.
    let truths: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            coll.search(&SearchRequest::new(q.clone(), 10).exact())
                .expect("exact search")
                .iter()
                .map(|p| p.id)
                .collect()
        })
        .collect();

    // Two-stage at full depth must be *identical* to exact: the coarse
    // scan then only selects candidates (all of them) and the exact
    // rerank decides.
    let mut full_depth_identical = true;
    for (q, truth) in queries.iter().take(5).zip(&truths) {
        let got: Vec<u64> = coll
            .search(&SearchRequest::new(q.clone(), 10).rerank_depth(n))
            .expect("full-depth two-stage search")
            .iter()
            .map(|p| p.id)
            .collect();
        full_depth_identical &= got == *truth;
    }

    let mut depths_out = Vec::new();
    for depth in [10usize, 20, 50, 100, 200] {
        let mut hit = 0usize;
        let mut total = 0usize;
        let t0 = Instant::now();
        for (q, truth) in queries.iter().zip(&truths) {
            let got = coll
                .search(&SearchRequest::new(q.clone(), 10).rerank_depth(depth))
                .expect("two-stage search");
            total += truth.len();
            hit += got.iter().filter(|p| truth.contains(&p.id)).count();
        }
        depths_out.push(QuantizedDepthOut {
            rerank_depth: depth,
            recall_at_10: hit as f64 / total as f64,
            query_us: t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64,
        });
    }

    // Timed comparison at the depth the recall gate certifies, against
    // the exact scan on the same (now warm) collection. The flight
    // recorder splits the two-stage time into its phases around the
    // timed run, so the coarse-scan cost — the part the BENCH_PQ.json
    // throughput floor is about — is measured end to end too. (The
    // rerank phase pays real demand-paging faults; at this dataset size
    // the page cache covers a fifth of the data, so total two-stage
    // latency is a memory-budget trade, not a win.)
    let coarse_stats = |name: &str| -> Option<(u64, u64)> {
        let snap = vq_obs::snapshot()?;
        let h = snap.histogram(name).copied()?;
        Some((h.sum, h.count))
    };
    let time_path = |exact: bool| -> f64 {
        let iters = 3usize;
        let t0 = Instant::now();
        for _ in 0..iters {
            for q in &queries {
                let req = if exact {
                    SearchRequest::new(q.clone(), 10).exact()
                } else {
                    SearchRequest::new(q.clone(), 10).rerank_depth(100)
                };
                std::hint::black_box(coll.search(&req).expect("timed search"));
            }
        }
        t0.elapsed().as_secs_f64() * 1e6 / (iters * queries.len()) as f64
    };
    let before = coarse_stats("phase.coarse_scan");
    let two_stage_us = time_path(false);
    let coarse_us = coarse_stats("phase.coarse_scan").zip(before).and_then(
        |((sum1, n1), (sum0, n0))| {
            (n1 > n0).then(|| (sum1 - sum0) as f64 / (n1 - n0) as f64 / 1e3)
        },
    );
    let exact_us = time_path(true);
    let coarse_speedup = coarse_us.map(|c| exact_us / c.max(1e-9));

    let stats = coll.stats();
    let reduction = stats.quantized_reduction();
    let best_recall = depths_out
        .iter()
        .map(|d| d.recall_at_10)
        .fold(0.0f64, f64::max);

    let mut t = TextTable::new(["Rerank depth", "Recall@10", "Query us"]);
    for row in &depths_out {
        t.row([
            row.rerank_depth.to_string(),
            format!("{:.4}", row.recall_at_10),
            format!("{:.0}", row.query_us),
        ]);
    }
    print!("{}", t.render());
    println!(
        "exact scan {exact_us:.0} us/query; two-stage @depth 100 {two_stage_us:.0} us/query, of which coarse scan {} ({} vs exact)",
        coarse_us.map_or("n/a".into(), |c| format!("{c:.0} us")),
        coarse_speedup.map_or("n/a".into(), |s| format!("{s:.2}x")),
    );
    println!(
        "resident {} of {} full-precision bytes on quantized segments ({reduction:.2}x reduction)",
        stats.quantized_resident_bytes, stats.quantized_full_bytes,
    );
    if let Some(snap) = vq_obs::snapshot() {
        println!("phase latency percentiles (flight recorder):");
        print_phase_percentiles(&snap, &["coarse_scan", "rerank"]);
    }

    emit(
        json,
        "quantized",
        &QuantizedReport {
            dim,
            points: n,
            pq_m,
            pq_ks: 256,
            quantized_segments: stats.quantized_segments,
            build_secs,
            depths: depths_out.clone(),
            exact_query_us: exact_us,
            two_stage_query_us: two_stage_us,
            coarse_scan_us: coarse_us,
            coarse_scan_speedup: coarse_speedup,
            quantized_full_bytes: stats.quantized_full_bytes,
            quantized_resident_bytes: stats.quantized_resident_bytes,
            resident_reduction: reduction,
            metrics: obs_metrics_json(),
        },
    );

    if check {
        // Recall is monotone in depth by construction (the candidate set
        // at depth d is a prefix of the set at d' > d, and the rerank is
        // exact), so a violation means the coarse ordering broke.
        let monotone = depths_out
            .windows(2)
            .all(|w| w[1].recall_at_10 >= w[0].recall_at_10 - 1e-9);
        enforce_shapes(
            "quantized",
            &[
                (
                    "some measured rerank depth reaches recall@10 >= 0.95",
                    best_recall >= 0.95,
                ),
                (
                    "quantized segments keep <= 1/4 of full-precision bytes resident",
                    reduction >= 4.0,
                ),
                (
                    "coarse scan >= 2x faster than the exact scan it displaces",
                    coarse_speedup.is_none_or(|s| s >= 2.0),
                ),
                (
                    "two-stage at full rerank depth identical to exact",
                    full_depth_identical,
                ),
                ("recall non-decreasing in rerank depth", monotone),
                (
                    "every sealed segment got quantized",
                    built >= 1 && stats.quantized_segments == built,
                ),
            ],
        );
    }
}

#[derive(Serialize)]
struct ParadoxReport {
    dim: usize,
    points: u64,
    queries: usize,
    reps: usize,
    detected_cores: usize,
    live: Vec<vq_bench::paradox::LivePoint>,
    virtual_cores: f64,
    virtual_penalty: f64,
    virtual_sweep: Vec<vq_bench::paradox::VirtualPoint>,
    worst_total_threads: usize,
    worst_global_qps: f64,
    worst_partitioned_qps: f64,
    worst_improvement: f64,
    metrics: serde_json::Value,
}

/// Scaling-paradox sweep (opt-in; real clusters plus the deterministic
/// virtual node). `--check` enforces the BENCH_PARADOX.json gates — the
/// CI paradox-smoke contract.
fn print_paradox(json: bool, check: bool, scale: f64) {
    use vq_bench::paradox::{self, LiveScale};

    section("Scaling paradox: workers x threads sweep, before/after the execution layer");
    // Bursts must be long enough that best-of-reps is a real noise
    // floor: at the full scale a burst is a few hundred queries (tens of
    // milliseconds), not a scheduler-jitter-sized blip. The sweep itself
    // visits the grid twice (see `live_sweep`), so each arm gets
    // 2 passes x `reps` bursts.
    let live_scale = LiveScale {
        points: scaled(8_192, scale, 1_024),
        dim: 32,
        queries: scaled(384, scale, 48) as usize,
        reps: 2,
    };
    let cores = vq_hpc::NodeTopology::detect().cores;
    println!(
        "{} points, dim {}, {} queries/burst, best of {} bursts, {} detected cores",
        live_scale.points, live_scale.dim, live_scale.queries, live_scale.reps, cores
    );

    let live = paradox::live_sweep(&live_scale);
    let mut t = TextTable::new([
        "Workers", "Threads/worker", "Total", "global q/s", "colocated q/s",
        "partitioned q/s", "Steals", "Pinned",
    ]);
    for p in &live {
        t.row([
            p.workers.to_string(),
            format!("{} -> {}", p.threads_per_worker, p.partitioned_threads),
            p.total_threads.to_string(),
            format!("{:.0}", p.global_qps),
            format!("{:.0}", p.colocated_qps),
            format!("{:.0}", p.partitioned_qps),
            p.pool_steals.to_string(),
            p.pool_pinned.to_string(),
        ]);
    }
    print!("{}", t.render());

    let virtual_sweep = paradox::virtual_sweep();
    let mut tv = TextTable::new([
        "Workers", "Threads/worker", "Total", "before (rel)", "after (rel)",
    ]);
    for p in &virtual_sweep {
        tv.row([
            p.workers.to_string(),
            p.threads_per_worker.to_string(),
            p.total_threads.to_string(),
            format!("{:.3}", p.before_throughput),
            format!("{:.3}", p.after_throughput),
        ]);
    }
    println!("\nvirtual node ({} cores, oversubscription penalty {}):",
        paradox::VIRTUAL_CORES, paradox::VIRTUAL_PENALTY);
    print!("{}", tv.render());

    let worst = paradox::worst_point(&live).clone();
    let improvement = worst.partitioned_qps / worst.global_qps.max(1e-9);
    println!(
        "worst oversubscribed point ({} workers x {} threads): {:.0} -> {:.0} q/s ({:.2}x vs global pool)",
        worst.workers, worst.threads_per_worker, worst.global_qps,
        worst.partitioned_qps, improvement
    );

    let out = ParadoxReport {
        dim: live_scale.dim,
        points: live_scale.points,
        queries: live_scale.queries,
        reps: live_scale.reps,
        detected_cores: cores,
        live: live.clone(),
        virtual_cores: paradox::VIRTUAL_CORES,
        virtual_penalty: paradox::VIRTUAL_PENALTY,
        virtual_sweep: virtual_sweep.clone(),
        worst_total_threads: worst.total_threads,
        worst_global_qps: worst.global_qps,
        worst_partitioned_qps: worst.partitioned_qps,
        worst_improvement: improvement,
        metrics: obs_metrics_json(),
    };

    // BENCH_PARADOX.json is the committed repo-root record of this sweep
    // (same convention as BENCH_PQ.json / BENCH_NET.json).
    let mut bench = serde_json::to_value(&out).expect("serializable");
    if let Some(map) = bench.as_object_mut() {
        map.insert(
            "description".to_string(),
            serde_json::to_value(
                "repro paradox: workers x threads-per-worker sweep; global rayon pool vs \
                 per-worker work-stealing pools (fair-share clamp + core affinity + \
                 contention-spread placement), live cluster and oversubscription-penalized \
                 virtual node",
            )
            .expect("string"),
        );
        map.remove("metrics");
    }
    if std::fs::write(
        "BENCH_PARADOX.json",
        serde_json::to_string_pretty(&bench).expect("render") + "\n",
    )
    .is_ok()
    {
        println!("wrote BENCH_PARADOX.json");
    }
    emit(json, "paradox", &out);

    if check {
        // Live gates carry generous tolerances (shared CI boxes, small
        // smoke workloads); the deterministic virtual curves pin the
        // exact before/after shape.
        let worst_not_losing = worst.partitioned_qps >= worst.global_qps * 0.95;
        let smaller = paradox::best_smaller(&live, |p| p.partitioned_qps);
        let no_regression = smaller
            .iter()
            .all(|&(i, best)| live[i].partitioned_qps >= best * 0.90);
        // Gate on `pool.injected` (caller-side, deterministic), not
        // `pool.tasks`: the caller participates in fork–join and can
        // legitimately drain a small scope before any pool thread wins
        // a ticket.
        let counters_recorded = !vq_obs::enabled()
            || live.iter().all(|p| p.pool_injected > 0);

        let v_worst = virtual_sweep
            .iter()
            .max_by_key(|p| p.total_threads)
            .expect("virtual sweep non-empty");
        let v_peak_before = virtual_sweep
            .iter()
            .map(|p| p.before_throughput)
            .fold(0.0f64, f64::max);
        let paradox_exists = v_worst.before_throughput < v_peak_before * 0.95;
        let paradox_fixed = v_worst.after_throughput > v_worst.before_throughput * 1.05;
        let after_monotone = virtual_sweep.iter().all(|p| {
            virtual_sweep
                .iter()
                .filter(|q| q.total_threads < p.total_threads)
                .all(|q| p.after_throughput >= q.after_throughput * 0.90)
        });

        enforce_shapes(
            "paradox",
            &[
                (
                    "live: worst oversubscribed point does not lose to the global-pool baseline",
                    worst_not_losing,
                ),
                (
                    "live: no partitioned point >10% below a smaller config at the same worker count",
                    no_regression,
                ),
                (
                    "live: pool dispatch/steal counters recorded on every sweep point",
                    counters_recorded,
                ),
                (
                    "virtual: unclamped arm exhibits the paradox (worst point below peak)",
                    paradox_exists,
                ),
                (
                    "virtual: fair-share clamp improves the worst oversubscribed point",
                    paradox_fixed,
                ),
                (
                    "virtual: clamped arm never >10% below any smaller configuration",
                    after_monotone,
                ),
            ],
        );
    }
}

#[derive(Serialize)]
struct TracePhaseAttribution {
    phase: String,
    /// Mean self-time (span duration minus child durations) per trace
    /// in the slowest decile, milliseconds.
    tail_self_ms: f64,
}

#[derive(Serialize)]
struct TraceArmOut {
    /// `direct` (ClusterClient over the fabric) or `rest` (HTTP edge).
    arm: String,
    requests: u64,
    kept: u64,
    complete_trees: u64,
    spans_per_trace: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Which phase explains the tail: self-time breakdown of the
    /// slowest-decile traces, largest first.
    tail_attribution: Vec<TracePhaseAttribution>,
}

#[derive(Serialize)]
struct TraceReport {
    transport: String,
    workers: u32,
    shards: u32,
    points: u64,
    arms: Vec<TraceArmOut>,
    /// Tail-only phase: requests retained with head sampling off.
    tail_only_kept: u64,
    tail_only_requests: u64,
    slow_log_lines: u64,
    chrome_events: u64,
    chrome_valid: bool,
}

/// Structural completeness of one retained search trace: ids intact
/// (every span carries the trace id, every parent resolves), the
/// expected tree is present (coordinate under the root, queue-wait /
/// search / gather children, one `shard_search` span per shard), and
/// every span's interval nests inside the root's.
fn trace_complete(t: &vq_obs::FinishedTrace, shards: u64, rest_edge: bool) -> bool {
    let has = |n: &str| t.spans.iter().any(|s| s.name == n);
    let shard_spans = t.spans.iter().filter(|s| s.name == "shard_search").count() as u64;
    // `finish` pushes the root span last.
    let Some(root) = t.spans.last().filter(|s| s.parent_id == 0) else {
        return false;
    };
    let eps = 5e-3;
    let nested = t.spans.iter().all(|s| {
        s.at_secs >= root.at_secs - eps
            && s.at_secs + s.dur_secs <= root.at_secs + root.dur_secs + eps
    });
    t.well_parented()
        && t.spans.iter().all(|s| s.trace_id == t.trace_id)
        && has("coordinate")
        && has("gather")
        && has("queue_wait")
        && has("search")
        && shard_spans == shards
        && (!rest_edge || has("client_search"))
        && nested
}

/// Self-time attribution over the slowest decile of `traces` — the
/// answer to "which phase explains p99", largest share first.
fn tail_attribution(traces: &[vq_obs::FinishedTrace]) -> Vec<TracePhaseAttribution> {
    if traces.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<&vq_obs::FinishedTrace> = traces.iter().collect();
    sorted.sort_by(|a, b| a.dur_secs.total_cmp(&b.dur_secs));
    let take = (sorted.len() / 10).max(1);
    let tail = &sorted[sorted.len() - take..];
    let mut by: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for t in tail {
        for (name, secs) in t.phase_self_secs() {
            *by.entry(name).or_default() += secs;
        }
    }
    let mut out: Vec<TracePhaseAttribution> = by
        .into_iter()
        .map(|(phase, secs)| TracePhaseAttribution {
            phase,
            tail_self_ms: secs * 1e3 / take as f64,
        })
        .collect();
    out.sort_by(|a, b| b.tail_self_ms.total_cmp(&a.tail_self_ms));
    out
}

fn percentile_ms(traces: &[vq_obs::FinishedTrace], p: f64) -> f64 {
    if traces.is_empty() {
        return 0.0;
    }
    let mut durs: Vec<f64> = traces.iter().map(|t| t.dur_secs * 1e3).collect();
    durs.sort_by(|a, b| a.total_cmp(b));
    let idx = ((durs.len() as f64 - 1.0) * p / 100.0).round() as usize;
    durs[idx.min(durs.len() - 1)]
}

fn summarize_arm(
    arm: &str,
    requests: u64,
    traces: &[vq_obs::FinishedTrace],
    shards: u64,
    rest_edge: bool,
) -> TraceArmOut {
    let complete = traces
        .iter()
        .filter(|t| trace_complete(t, shards, rest_edge))
        .count() as u64;
    let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
    TraceArmOut {
        arm: arm.to_string(),
        requests,
        kept: traces.len() as u64,
        complete_trees: complete,
        spans_per_trace: spans as f64 / (traces.len().max(1)) as f64,
        p50_ms: percentile_ms(traces, 50.0),
        p99_ms: percentile_ms(traces, 99.0),
        tail_attribution: tail_attribution(traces),
    }
}

/// End-to-end distributed-tracing probe (opt-in; real cluster plus a
/// loopback REST server). Three phases on one cluster:
///
/// 1. **direct** — head-sample every `ClusterClient` search and require
///    a complete, well-nested tree per request: `client_search` root →
///    `coordinate` child → `queue_wait`/`search`/`gather` phases and one
///    `shard_search` span per shard, ids intact across the fabric.
/// 2. **rest** — the same searches through the HTTP edge with an
///    injected `x-vq-trace-id`; the server must echo the id and the
///    whole tree must hang off the `rest_edge` root under that id.
/// 3. **tail-keep** — head sampling off, zero threshold: every request
///    must be retained as a tail exemplar with a slow-query log line.
///
/// `--check` enforces all of it plus a valid Chrome trace-event export
/// and a non-empty tail-latency attribution (written to
/// `results/trace.json`).
fn print_trace(json: bool, check: bool, scale: f64, tcp: bool) {
    use vq_cluster::{Cluster, ClusterConfig};
    use vq_collection::CollectionConfig;
    use vq_core::Distance;
    use vq_net::TcpTransport;
    use vq_workload::{DatasetSpec, EmbeddingModel};

    section(&format!(
        "Distributed tracing ({} fabric): span trees, id propagation, tail-keep, p99 attribution",
        if tcp { "TCP" } else { "in-proc" }
    ));
    let workers = 2u32;
    let shards = 4u32;
    let dim = 16usize;
    let n = scaled(2_000, scale, 400);
    let corpus = CorpusSpec::small(n);
    let model = EmbeddingModel::small(&corpus, dim);
    let dataset = DatasetSpec::with_vectors(corpus, model, n);
    let config = ClusterConfig::new(workers).shards(shards);
    let collection = CollectionConfig::new(dim, Distance::Cosine).max_segment_points(512);
    if tcp {
        let cluster = Cluster::start_on(TcpTransport::new(), config, collection)
            .expect("cluster start");
        run_trace_probe(cluster, "tcp", &dataset, n, workers, shards, json, check);
    } else {
        let cluster = Cluster::start(config, collection).expect("cluster start");
        run_trace_probe(cluster, "inproc", &dataset, n, workers, shards, json, check);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_trace_probe<T: vq_net::Transport<vq_cluster::ClusterMsg> + 'static>(
    cluster: std::sync::Arc<vq_cluster::Cluster<T>>,
    transport: &str,
    dataset: &vq_workload::DatasetSpec,
    n: u64,
    workers: u32,
    shards: u32,
    json: bool,
    check: bool,
) {
    use std::sync::Arc;
    use vq_collection::SearchRequest;
    use vq_server::{ClusterBackend, Registry, RestClient, ServerConfig, VqServer};

    let queries = 32u64;
    let head_config = vq_obs::TraceConfig {
        sample_every: 1,
        tail_threshold_secs: 0.050,
        capacity: 512,
    };

    // Populate before tracing starts so only searches produce traces.
    let mut client = cluster.client();
    client
        .upsert_batch(dataset.points_in(0..n))
        .expect("populate");
    let probe_at = |i: u64| dataset.point((i * 13) % n).vector;

    // --- Arm 1: direct (ClusterClient over the fabric) -----------------
    vq_obs::uninstall_tracer();
    let tracer = vq_obs::install_tracer_with(head_config);
    for i in 0..queries {
        client
            .search_batch_outcome(vec![SearchRequest::new(probe_at(i), 10)])
            .expect("direct search");
    }
    let direct_traces: Vec<vq_obs::FinishedTrace> = tracer
        .finished()
        .into_iter()
        .filter(|t| t.root_name == "client_search")
        .collect();
    let direct = summarize_arm("direct", queries, &direct_traces, u64::from(shards), false);

    // --- Arm 2: REST edge (trace ids across HTTP) ----------------------
    vq_obs::uninstall_tracer();
    let tracer = vq_obs::install_tracer_with(head_config);
    let registry = Arc::new(Registry::new());
    registry.insert("bench", Arc::new(ClusterBackend::new(cluster.clone())));
    let mut server = VqServer::serve(
        registry,
        &ServerConfig {
            rest_addr: "127.0.0.1:0".to_string(),
            bin_addr: None,
        },
    )
    .expect("server start");
    let mut rest = RestClient::connect(server.rest_addr()).expect("rest connect");
    let mut injected: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut echoes_ok = true;
    for i in 0..queries {
        let want = 0x7ace_0000u64 + i + 1;
        injected.insert(want);
        let (hits, echoed) = rest
            .search_traced("bench", &SearchRequest::new(probe_at(i), 10), Some(want))
            .expect("rest search");
        echoes_ok &= echoed == Some(want) && hits.len() == 10;
    }
    server.shutdown();
    let rest_traces: Vec<vq_obs::FinishedTrace> = tracer
        .finished()
        .into_iter()
        .filter(|t| t.root_name == "rest_edge")
        .collect();
    let ids_ok = rest_traces.len() as u64 == queries
        && rest_traces.iter().all(|t| injected.contains(&t.trace_id));
    let rest_arm = summarize_arm("rest", queries, &rest_traces, u64::from(shards), true);

    // Chrome trace-event export, validated through a real JSON parser.
    let chrome = tracer.to_chrome_json();
    let chrome_events = serde_json::from_str::<serde_json::Value>(&chrome)
        .ok()
        .and_then(|v| v.get("traceEvents").and_then(|e| e.as_array()).map(Vec::len))
        .unwrap_or(0) as u64;
    let chrome_valid = chrome_events > 0;

    // --- Phase 3: tail-keep (head sampling off) ------------------------
    let tail_requests = 8u64;
    vq_obs::uninstall_tracer();
    let tracer = vq_obs::install_tracer_with(vq_obs::TraceConfig {
        sample_every: 0,
        tail_threshold_secs: 0.0,
        capacity: 64,
    });
    for i in 0..tail_requests {
        client
            .search_batch_outcome(vec![SearchRequest::new(probe_at(i * 29 + 3), 10)])
            .expect("tail search");
    }
    let tail_traces: Vec<vq_obs::FinishedTrace> = tracer
        .finished()
        .into_iter()
        .filter(|t| t.root_name == "client_search")
        .collect();
    let tail_only_kept = tail_traces.len() as u64;
    let tail_all_flagged = tail_traces.iter().all(|t| t.tail_kept && !t.sampled);
    let slow_log_lines = tracer.slow_query_log().lines().count() as u64;
    vq_obs::uninstall_tracer();
    cluster.shutdown();

    let out = TraceReport {
        transport: transport.to_string(),
        workers,
        shards,
        points: n,
        arms: vec![direct, rest_arm],
        tail_only_kept,
        tail_only_requests: tail_requests,
        slow_log_lines,
        chrome_events,
        chrome_valid,
    };

    let mut t = TextTable::new([
        "Arm", "Requests", "Kept", "Complete trees", "Spans/trace", "p50 ms", "p99 ms",
    ]);
    for arm in &out.arms {
        t.row([
            arm.arm.clone(),
            arm.requests.to_string(),
            arm.kept.to_string(),
            arm.complete_trees.to_string(),
            format!("{:.1}", arm.spans_per_trace),
            format!("{:.3}", arm.p50_ms),
            format!("{:.3}", arm.p99_ms),
        ]);
    }
    print!("{}", t.render());
    let mut t = TextTable::new(["Phase (tail decile)", "Self ms/trace"]);
    for a in &out.arms[0].tail_attribution {
        t.row([a.phase.clone(), format!("{:.3}", a.tail_self_ms)]);
    }
    print!("{}", t.render());
    println!(
        "tail-only phase: {}/{} retained ({} slow-query log lines); Chrome export: {} events, valid JSON {}",
        out.tail_only_kept, out.tail_only_requests, out.slow_log_lines, out.chrome_events, out.chrome_valid,
    );
    emit(
        json,
        if transport == "tcp" { "trace_tcp" } else { "trace" },
        &out,
    );

    if check {
        let direct_arm = &out.arms[0];
        let rest_arm = &out.arms[1];
        enforce_shapes(
            "trace",
            &[
                (
                    "head sampling at 1 keeps every direct search",
                    direct_arm.kept == queries,
                ),
                (
                    "every direct search yields a complete well-nested span tree",
                    direct_arm.complete_trees == queries,
                ),
                (
                    "every REST search yields a complete tree under the rest_edge root",
                    rest_arm.complete_trees == queries,
                ),
                (
                    "REST traces carry the injected trace ids end to end",
                    ids_ok,
                ),
                (
                    "server echoed every injected x-vq-trace-id",
                    echoes_ok,
                ),
                (
                    "tail-keep retains every request with head sampling off",
                    tail_only_kept == tail_requests && tail_all_flagged,
                ),
                (
                    "slow-query log has one line per tail-kept request",
                    slow_log_lines == tail_requests,
                ),
                (
                    "Chrome trace-event export is valid JSON with events",
                    chrome_valid,
                ),
                (
                    "tail attribution names at least one phase",
                    !direct_arm.tail_attribution.is_empty(),
                ),
            ],
        );
    }
}
