//! # vq-bench
//!
//! The measurement harness: everything needed to regenerate the paper's
//! evaluation section.
//!
//! * [`calib`] — the calibration constants, each tied to the paper
//!   sentence it derives from, plus the experiment-scale facts (dataset
//!   sizes, query counts, worker grids).
//! * [`fig3`] — the index-build scaling model (Figure 3).
//! * [`paradox`] — the scaling-paradox sweep: workers × threads on the
//!   live cluster and the oversubscription-penalized virtual node
//!   (`repro paradox`, BENCH_PARADOX.json).
//! * [`table1`] — the feature-comparison matrix (Table 1).
//! * [`report`] — plain-text table rendering and JSON result emission.
//! * [`repro`] *(binary)* — `cargo run -p vq-bench --bin repro -- all`
//!   prints every table and figure with the paper's numbers alongside.
//! * `benches/` — criterion micro-benchmarks of the *real* engine
//!   (distance kernels, HNSW build/search, cluster insert/query,
//!   ablations).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod calib;
pub mod fig3;
pub mod paradox;
pub mod report;
pub mod table1;

pub use calib::Calibration;
pub use fig3::IndexBuildModel;
