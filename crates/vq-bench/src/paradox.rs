//! The scaling-paradox sweep (`repro paradox`).
//!
//! "When More Cores Hurts" (PAPERS.md) measures distributed vector
//! search *losing* throughput as workers and threads are added past the
//! node's core count — the regime the paper's Fig. 3 first hints at with
//! its 1.27× speedup for 1→4 co-located workers. This module sweeps
//! workers × threads-per-worker on both runtimes and measures whether
//! the execution layer (per-worker [`vq_core::ExecPool`]s, core
//! affinity, contention-aware placement) removes the hurt:
//!
//! * **Live sweep** — a real in-process cluster per sweep point, three
//!   arms each: `global` (the legacy everything-on-one-rayon-pool
//!   baseline), `colocated` (per-worker pools, but unpinned and
//!   advertising the node-wide width — the chunk mis-sizing the old
//!   `rayon::current_num_threads()` call produced), and `partitioned`
//!   (threads clamped to the worker's fair core share, pinned to
//!   disjoint core slices, shards spread across nodes). Wall-clock
//!   noise on shared CI boxes is tamed with best-of-`reps` timing and
//!   two decorrelated passes over the grid (see [`live_sweep`]).
//! * **Virtual sweep** — the same grid through
//!   [`vq_hpc::MalleableCpu::with_oversubscription`], where the
//!   oversubscription penalty is explicit and the curves are exactly
//!   reproducible: the *before* arm submits every worker's scan at its
//!   configured thread cap, the *after* arm clamps to the fair share.
//!
//! The deterministic virtual curves carry the shape claims (the paradox
//! exists before, is gone after); the live sweep pins the same claims on
//! real hardware with tolerances. `BENCH_PARADOX.json` records both.

use serde::Serialize;
use vq_cluster::{Cluster, ClusterConfig, SearchExec};
use vq_collection::{CollectionConfig, SearchRequest};
use vq_core::Distance;
use vq_hpc::{Engine, MalleableCpu, NodeTopology};
use vq_workload::{CorpusSpec, DatasetSpec, EmbeddingModel};

/// The sweep grid: co-located workers × configured threads per worker.
pub const LIVE_WORKERS: [u32; 2] = [1, 2];
/// Threads-per-worker axis of the live grid.
pub const LIVE_THREADS: [usize; 3] = [1, 2, 4];

/// Virtual grid: workers per 32-core node.
pub const VIRTUAL_WORKERS: [u32; 4] = [1, 2, 4, 8];
/// Virtual grid: threads per worker.
pub const VIRTUAL_THREADS: [u32; 3] = [8, 16, 32];
/// Modeled node width for the virtual sweep (Polaris: 32 cores).
pub const VIRTUAL_CORES: f64 = 32.0;
/// Oversubscription penalty calibrated to the follow-up paper's
/// degradation shape (throughput ∝ 1 / (1 + p·overload)).
pub const VIRTUAL_PENALTY: f64 = 0.4;

/// Live workload sizing (already scaled by the caller).
#[derive(Debug, Clone, Copy)]
pub struct LiveScale {
    /// Vectors uploaded per sweep point.
    pub points: u64,
    /// Vector dimensionality.
    pub dim: usize,
    /// Queries per timed burst.
    pub queries: usize,
    /// Timed bursts per arm; the fastest is kept (noise floor).
    pub reps: usize,
}

/// One live sweep point: all three arms on the same workload.
#[derive(Debug, Clone, Serialize)]
pub struct LivePoint {
    /// Co-located workers.
    pub workers: u32,
    /// Configured threads per worker (the *colocated* arm runs exactly
    /// this many; the *partitioned* arm clamps to the fair core share).
    pub threads_per_worker: usize,
    /// workers × threads_per_worker — the oversubscription axis.
    pub total_threads: usize,
    /// Threads per worker the partitioned arm actually ran.
    pub partitioned_threads: usize,
    /// Legacy baseline: every worker forks into the global rayon pool.
    pub global_qps: f64,
    /// Per-worker pools, unpinned, node-wide advertised width (the
    /// chunk mis-sizing reproduction).
    pub colocated_qps: f64,
    /// Per-worker pools, fair-share clamp, core pinning,
    /// contention-spread placement.
    pub partitioned_qps: f64,
    /// `pool.injected` delta during the partitioned arm. This is the
    /// deterministic dispatch signal: the *caller* bumps it once per
    /// scope ticket, whereas `pool.tasks` only counts work a pool
    /// thread won the race to execute (the caller participates in
    /// fork–join, so on small scopes it can legitimately drain
    /// everything itself).
    pub pool_injected: u64,
    /// `pool.tasks` delta during the partitioned arm.
    pub pool_tasks: u64,
    /// `pool.steals` delta during the partitioned arm.
    pub pool_steals: u64,
    /// `pool.pinned_threads` delta during the partitioned arm (0 where
    /// `sched_setaffinity` is unsupported or denied).
    pub pool_pinned: u64,
}

/// One virtual sweep point (throughput normalized to the 1-worker
/// full-node ideal = 1.0).
#[derive(Debug, Clone, Serialize)]
pub struct VirtualPoint {
    /// Workers on the modeled node.
    pub workers: u32,
    /// Configured threads per worker.
    pub threads_per_worker: u32,
    /// workers × threads_per_worker.
    pub total_threads: u32,
    /// Normalized throughput with every worker demanding its configured
    /// thread count (the paradox curve).
    pub before_throughput: f64,
    /// Normalized throughput with threads clamped to the fair share.
    pub after_throughput: f64,
}

/// Makespan of `workers` equal scan tasks capped at `threads` cores each
/// on one oversubscription-penalized node.
fn virtual_makespan(workers: u32, threads: f64, total_work: f64) -> f64 {
    let cpu = MalleableCpu::with_oversubscription(VIRTUAL_CORES, VIRTUAL_PENALTY);
    let mut engine = Engine::new();
    for _ in 0..workers {
        cpu.submit(
            &mut engine,
            total_work / f64::from(workers),
            threads,
            |_, _| {},
        );
    }
    engine.run_until_idle().as_secs_f64()
}

/// Run the deterministic virtual sweep.
pub fn virtual_sweep() -> Vec<VirtualPoint> {
    // One node-hour of scan work; only ratios matter.
    let total_work = VIRTUAL_CORES * 60.0;
    let ideal = virtual_makespan(1, VIRTUAL_CORES, total_work);
    let mut out = Vec::new();
    for &w in &VIRTUAL_WORKERS {
        for &t in &VIRTUAL_THREADS {
            let before = virtual_makespan(w, f64::from(t), total_work);
            let fair = (VIRTUAL_CORES / f64::from(w)).min(f64::from(t)).max(1.0);
            let after = virtual_makespan(w, fair, total_work);
            out.push(VirtualPoint {
                workers: w,
                threads_per_worker: t,
                total_threads: w * t,
                before_throughput: ideal / before,
                after_throughput: ideal / after,
            });
        }
    }
    out
}

/// Snapshot one vq-obs counter (0 when the recorder is disabled).
fn obs_counter(name: &str) -> u64 {
    vq_obs::snapshot().map_or(0, |s| s.counter(name))
}

/// Queries-per-second of one cluster arm on `dataset`, best of
/// `scale.reps` bursts.
fn run_live_arm(
    workers: u32,
    exec: SearchExec,
    dataset: &DatasetSpec,
    scale: &LiveScale,
) -> f64 {
    let mut config = ClusterConfig::new(workers).shards(workers).exec(exec);
    // One "node" = this whole machine, so fair shares and core slices
    // divide the real core count among the co-located workers.
    config.workers_per_node = workers;
    let cluster = Cluster::start(config, CollectionConfig::new(scale.dim, Distance::Cosine))
        .expect("paradox cluster start");
    let mut client = cluster.client();
    client
        .upsert_batch(dataset.points_in(0..scale.points))
        .expect("paradox upload");

    let probe = |i: usize| dataset.point((i as u64 * 13) % scale.points).vector;
    for i in 0..4 {
        client
            .search(SearchRequest::new(probe(i), 10))
            .expect("warmup search");
    }
    let mut best = f64::INFINITY;
    for _ in 0..scale.reps.max(1) {
        let t0 = std::time::Instant::now();
        for i in 0..scale.queries {
            client
                .search(SearchRequest::new(probe(i), 10))
                .expect("timed search");
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    cluster.shutdown();
    scale.queries as f64 / best.max(1e-9)
}

/// Run the live sweep: every grid point, three arms each.
///
/// The grid is visited in TWO full passes minutes apart, keeping the
/// best throughput per arm per point (counter deltas accumulate). One
/// visit per point would let a low-frequency noise episode (co-tenant
/// CPU, frequency scaling) bias *cross-point* comparisons — exactly
/// what the `--check` regression gate computes; best-of within a single
/// visit's back-to-back bursts cannot decorrelate that.
pub fn live_sweep(scale: &LiveScale) -> Vec<LivePoint> {
    let corpus = CorpusSpec::small(scale.points);
    let model = EmbeddingModel::small(&corpus, scale.dim);
    let dataset = DatasetSpec::with_vectors(corpus, model, scale.points);
    let cores = NodeTopology::detect().cores;

    let mut out: Vec<LivePoint> = Vec::new();
    for pass in 0..2 {
        let mut idx = 0;
        for &w in &LIVE_WORKERS {
            for &t in &LIVE_THREADS {
                let global_qps = run_live_arm(w, SearchExec::global_rayon(), &dataset, scale);

                // "Before": per-worker pools at the configured width,
                // chunks sized as if the whole node were theirs.
                let colocated = SearchExec {
                    threads_per_worker: Some(t),
                    advertised_width: Some((w as usize * t).max(1)),
                    ..SearchExec::default()
                };
                let colocated_qps = run_live_arm(w, colocated, &dataset, scale);

                // "After": fair-share clamp + affinity + spread placement.
                let fair = (cores / w as usize).max(1).min(t);
                let partitioned = SearchExec {
                    threads_per_worker: Some(fair),
                    pin_cores: true,
                    contention_spread: true,
                    ..SearchExec::default()
                };
                let injected0 = obs_counter("pool.injected");
                let tasks0 = obs_counter("pool.tasks");
                let steals0 = obs_counter("pool.steals");
                let pinned0 = obs_counter("pool.pinned_threads");
                let partitioned_qps = run_live_arm(w, partitioned, &dataset, scale);
                let injected = obs_counter("pool.injected").saturating_sub(injected0);
                let tasks = obs_counter("pool.tasks").saturating_sub(tasks0);
                let steals = obs_counter("pool.steals").saturating_sub(steals0);
                let pinned = obs_counter("pool.pinned_threads").saturating_sub(pinned0);

                if pass == 0 {
                    out.push(LivePoint {
                        workers: w,
                        threads_per_worker: t,
                        total_threads: w as usize * t,
                        partitioned_threads: fair,
                        global_qps,
                        colocated_qps,
                        partitioned_qps,
                        pool_injected: injected,
                        pool_tasks: tasks,
                        pool_steals: steals,
                        pool_pinned: pinned,
                    });
                } else {
                    let p = &mut out[idx];
                    p.global_qps = p.global_qps.max(global_qps);
                    p.colocated_qps = p.colocated_qps.max(colocated_qps);
                    p.partitioned_qps = p.partitioned_qps.max(partitioned_qps);
                    p.pool_injected += injected;
                    p.pool_tasks += tasks;
                    p.pool_steals += steals;
                    p.pool_pinned += pinned;
                }
                idx += 1;
            }
        }
    }
    out
}

/// The most oversubscribed live point (max total threads, ties broken by
/// worker count — the configuration the paradox punishes hardest).
pub fn worst_point(points: &[LivePoint]) -> &LivePoint {
    points
        .iter()
        .max_by_key(|p| (p.total_threads, p.workers))
        .expect("non-empty sweep")
}

/// For each point, the best partitioned-arm throughput among strictly
/// smaller (fewer total threads) points of the same worker count whose
/// *effective* partitioned configuration differs, when one exists.
/// Returns `(point_index, best_smaller_qps)` pairs.
///
/// Same-worker-count only: the thread axis is what the fair-share clamp
/// addresses, whereas comparing across worker counts conflates
/// scheduling with per-cluster sharding overhead. Identical effective
/// configs (same workers, same clamped thread count — common once the
/// clamp engages, and universal on a 1-core host) are excluded: the
/// partitioned arm runs the same configuration at both points, so the
/// comparison would measure run-to-run noise and nothing else.
pub fn best_smaller<F: Fn(&LivePoint) -> f64>(
    points: &[LivePoint],
    qps: F,
) -> Vec<(usize, f64)> {
    points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            points
                .iter()
                .filter(|q| {
                    q.workers == p.workers
                        && q.total_threads < p.total_threads
                        && q.partitioned_threads != p.partitioned_threads
                })
                .map(&qps)
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                })
                .map(|best| (i, best))
        })
        .collect()
}
