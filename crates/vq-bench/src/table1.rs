//! Table 1: the feature comparison of distributed vector databases.
//!
//! A static matrix transcribed from the paper (§2.2), rendered by the
//! `repro` binary. "Paid" marks features only available in the vendor's
//! paid cloud offering (the table's half-filled squares).

use serde::{Deserialize, Serialize};

/// Support level for one feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Support {
    /// Available in the open-source offering.
    Yes,
    /// Not available.
    No,
    /// Available only in the paid cloud offering.
    Paid,
}

impl Support {
    /// Render as the paper's glyphs.
    pub fn glyph(&self) -> &'static str {
        match self {
            Support::Yes => "yes",
            Support::No => "no",
            Support::Paid => "paid",
        }
    }
}

/// One system's row.
/// (Serialize-only: `&'static str` cannot be deserialized from transient input.)
#[derive(Debug, Clone, Serialize)]
pub struct SystemRow {
    /// System name.
    pub system: &'static str,
    /// Parallel reads/writes.
    pub parallel_rw: Support,
    /// Compute/storage separation (stateless workers).
    pub compute_storage_separation: Support,
    /// Load-balanced autoscaling.
    pub autoscaling: Support,
    /// Shard replication.
    pub replication: Support,
    /// GPU-accelerated index construction.
    pub gpu_indexing: Support,
    /// GPU-accelerated ANN search.
    pub gpu_ann: Support,
}

/// The feature names, in column order.
pub const FEATURES: [&str; 6] = [
    "Parallel Read/Write",
    "Compute/Storage Separation",
    "Load Balanced Autoscaling",
    "Replication",
    "GPU Indexing",
    "GPU ANN",
];

/// Table 1's rows as printed in the paper.
pub fn rows() -> Vec<SystemRow> {
    use Support::{No, Paid, Yes};
    vec![
        SystemRow {
            system: "Vespa",
            parallel_rw: Yes,
            compute_storage_separation: Yes,
            autoscaling: Paid,
            replication: Yes,
            gpu_indexing: No,
            gpu_ann: No,
        },
        SystemRow {
            system: "Vald",
            parallel_rw: Yes,
            compute_storage_separation: No,
            autoscaling: Yes,
            replication: Yes,
            gpu_indexing: Yes,
            gpu_ann: Yes,
        },
        SystemRow {
            system: "Weaviate",
            parallel_rw: Yes,
            compute_storage_separation: No,
            autoscaling: Yes,
            replication: Yes,
            gpu_indexing: Yes,
            gpu_ann: Yes,
        },
        SystemRow {
            system: "Qdrant",
            parallel_rw: Yes,
            compute_storage_separation: No,
            autoscaling: Paid,
            replication: Yes,
            gpu_indexing: Yes,
            gpu_ann: No,
        },
        SystemRow {
            system: "Milvus",
            parallel_rw: Yes,
            compute_storage_separation: Yes,
            autoscaling: Yes,
            replication: Yes,
            gpu_indexing: Yes,
            gpu_ann: Yes,
        },
    ]
}

/// Which of Table 1's architectures `vq` itself implements (stateful
/// sharding, like Qdrant) — used by the repro output footer.
pub fn vq_row() -> SystemRow {
    use Support::{No, Yes};
    SystemRow {
        system: "vq (this repo)",
        parallel_rw: Yes,
        compute_storage_separation: No, // stateful by design, like Qdrant
        autoscaling: Yes,               // scale_out() + rebalancing
        replication: Yes,
        gpu_indexing: No, // modeled hook only (paper's future work)
        gpu_ann: No,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_highlights() {
        let rows = rows();
        assert_eq!(rows.len(), 5);
        // "only a subset—Vespa and Milvus—support compute-storage
        // separation"
        let sep: Vec<&str> = rows
            .iter()
            .filter(|r| r.compute_storage_separation == Support::Yes)
            .map(|r| r.system)
            .collect();
        assert_eq!(sep, vec!["Vespa", "Milvus"]);
        // "only Vald, Weaviate, and Milvus support both GPU-accelerated
        // indexing and ANN search"
        let gpu_both: Vec<&str> = rows
            .iter()
            .filter(|r| r.gpu_indexing == Support::Yes && r.gpu_ann == Support::Yes)
            .map(|r| r.system)
            .collect();
        assert_eq!(gpu_both, vec!["Vald", "Weaviate", "Milvus"]);
        // All systems: parallel R/W and replication.
        assert!(rows.iter().all(|r| r.parallel_rw == Support::Yes));
        assert!(rows.iter().all(|r| r.replication != Support::No));
        // Qdrant: GPU indexing yes, GPU ANN no.
        let qdrant = rows.iter().find(|r| r.system == "Qdrant").unwrap();
        assert_eq!(qdrant.gpu_indexing, Support::Yes);
        assert_eq!(qdrant.gpu_ann, Support::No);
    }

    #[test]
    fn vq_mirrors_qdrants_architecture() {
        let vq = vq_row();
        assert_eq!(vq.compute_storage_separation, Support::No);
        assert_eq!(vq.replication, Support::Yes);
    }

    #[test]
    fn glyphs_render() {
        assert_eq!(Support::Yes.glyph(), "yes");
        assert_eq!(Support::No.glyph(), "no");
        assert_eq!(Support::Paid.glyph(), "paid");
    }
}
