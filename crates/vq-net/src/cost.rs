//! Analytic network cost model.
//!
//! Transfer time = `hops × latency + bytes / bandwidth`, with the hop
//! count derived from the topology. Two topologies are provided:
//!
//! * [`Topology::Flat`] — every pair of distinct nodes is one hop apart
//!   (a non-blocking crossbar; good default for small clusters).
//! * [`Topology::Dragonfly`] — nodes grouped as on Polaris's Slingshot
//!   11: one hop within a group, three hops (local–global–local) between
//!   groups.
//!
//! Co-located endpoints (same node) pay a loopback latency and are not
//! bandwidth-limited by the NIC: Qdrant workers on one node talk over
//! loopback, which matters for the paper's 4-workers-per-node layout.

use serde::{Deserialize, Serialize};

/// Point-to-point link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way per-hop latency in seconds (application level).
    pub latency_secs: f64,
    /// Sustained per-stream bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Loopback latency for same-node messages, in seconds.
    pub loopback_secs: f64,
    /// Loopback bandwidth (memory-speed; effectively the serialization
    /// cost of the local RPC stack).
    pub loopback_bps: f64,
}

impl LinkModel {
    /// Application-level Slingshot-11 figures: the fabric offers ~2 µs /
    /// 25 GB/s, but a Qdrant RPC traverses gRPC + TCP, landing near
    /// 150 µs / 2.5 GB/s per stream.
    pub fn slingshot11_app() -> Self {
        LinkModel {
            latency_secs: 150e-6,
            bandwidth_bps: 2.5e9,
            loopback_secs: 40e-6,
            loopback_bps: 8e9,
        }
    }
}

/// Inter-node wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// All distinct nodes one hop apart.
    Flat,
    /// Dragonfly with `nodes_per_group` nodes per group: 1 hop within a
    /// group, 3 hops across groups.
    Dragonfly {
        /// Group size in nodes.
        nodes_per_group: u32,
    },
}

impl Topology {
    /// Hop count between two nodes (0 for the same node).
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Flat => 1,
            Topology::Dragonfly { nodes_per_group } => {
                let g = nodes_per_group.max(1);
                if a / g == b / g {
                    1
                } else {
                    3
                }
            }
        }
    }
}

/// The full network model: link parameters + topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link parameters.
    pub link: LinkModel,
    /// Topology.
    pub topology: Topology,
}

impl NetworkModel {
    /// The Polaris deployment model: Slingshot-11 application-level link
    /// figures in a Dragonfly with (by default) 8-node groups.
    pub fn polaris() -> Self {
        NetworkModel {
            link: LinkModel::slingshot11_app(),
            topology: Topology::Dragonfly { nodes_per_group: 8 },
        }
    }

    /// One-way transfer time in seconds for `bytes` from node `a` to `b`.
    pub fn transfer_secs(&self, a: u32, b: u32, bytes: u64) -> f64 {
        let hops = self.topology.hops(a, b);
        if hops == 0 {
            self.link.loopback_secs + bytes as f64 / self.link.loopback_bps
        } else {
            hops as f64 * self.link.latency_secs + bytes as f64 / self.link.bandwidth_bps
        }
    }

    /// Round-trip time for a request of `req_bytes` and a response of
    /// `resp_bytes`.
    pub fn rtt_secs(&self, a: u32, b: u32, req_bytes: u64, resp_bytes: u64) -> f64 {
        self.transfer_secs(a, b, req_bytes) + self.transfer_secs(b, a, resp_bytes)
    }

    /// Time for node `a` to broadcast `bytes` to every node in `peers`
    /// over independent streams (the slowest peer bounds the broadcast —
    /// how Qdrant fans a query out to all workers).
    pub fn broadcast_secs(&self, a: u32, peers: &[u32], bytes: u64) -> f64 {
        peers
            .iter()
            .map(|&p| self.transfer_secs(a, p, bytes))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_node_is_loopback() {
        let m = NetworkModel::polaris();
        let t = m.transfer_secs(3, 3, 0);
        assert!((t - m.link.loopback_secs).abs() < 1e-12);
        // Loopback must beat the fabric for small messages.
        assert!(t < m.transfer_secs(3, 4, 0));
    }

    #[test]
    fn flat_topology_single_hop() {
        let t = Topology::Flat;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(5, 900), 1);
    }

    #[test]
    fn dragonfly_group_locality() {
        let t = Topology::Dragonfly { nodes_per_group: 4 };
        assert_eq!(t.hops(0, 3), 1, "same group");
        assert_eq!(t.hops(0, 4), 3, "adjacent group");
        assert_eq!(t.hops(5, 6), 1);
        assert_eq!(t.hops(1, 1), 0);
    }

    #[test]
    fn bandwidth_term_dominates_large_transfers() {
        let m = NetworkModel::polaris();
        let one_gb = m.transfer_secs(0, 9, 1_000_000_000);
        // 1 GB at 2.5 GB/s = 0.4 s ≫ 3 hops × 150 µs.
        assert!((one_gb - (3.0 * 150e-6 + 0.4)).abs() < 1e-9);
    }

    #[test]
    fn rtt_is_symmetric_sum() {
        let m = NetworkModel::polaris();
        let rtt = m.rtt_secs(0, 1, 1000, 500);
        assert!((rtt - (m.transfer_secs(0, 1, 1000) + m.transfer_secs(1, 0, 500))).abs() < 1e-15);
    }

    #[test]
    fn broadcast_bounded_by_slowest_peer() {
        let m = NetworkModel::polaris();
        // Peers: same node (0), same group (1), other group (9).
        let t = m.broadcast_secs(0, &[0, 1, 9], 10_000);
        assert!((t - m.transfer_secs(0, 9, 10_000)).abs() < 1e-15);
        assert_eq!(m.broadcast_secs(0, &[], 10_000), 0.0);
    }
}
