//! Binary wire codec and framing for transports that move real bytes.
//!
//! The in-process [`Switchboard`](crate::transport::Switchboard) hands
//! `ClusterMsg` values between threads by moving them; a TCP transport has
//! to serialize. This module provides the codec both sides of a socket
//! agree on:
//!
//! * **Value encoding** — a compact, self-describing binary rendering of
//!   the serde data model (`vbin`). Every value carries a one-byte tag;
//!   integers are minimal-width; structs and enum variants are encoded by
//!   *name* (external tagging, like JSON) so the format survives field
//!   reordering and unknown-variant detection is explicit. Sequences whose
//!   elements are all `f32` collapse to a raw little-endian slab
//!   ([`Tag::F32Seq`]) — 4 bytes per element instead of 5 — so query
//!   vectors and point batches stay near the raw-float floor.
//! * **Framing** — `[magic "VQF1"][version u8][len u32][crc32 u32][payload]`.
//!   The CRC covers the payload; torn frames, garbage prefixes, version
//!   skew and absurd lengths are all rejected before a single payload byte
//!   is interpreted.
//!
//! [`to_bytes`]/[`from_bytes`] are the codec entry points; they are
//! generic over any `serde` type, which is what lets `ClusterMsg` (and the
//! serving layer's own protocol enums) derive their wire format instead of
//! hand-maintaining one.

use serde::de::{
    DeserializeOwned, DeserializeSeed, EnumAccess, Error as DeError, MapAccess, SeqAccess,
    VariantAccess, Visitor,
};
use serde::ser::{
    Error as SerError, SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant,
    SerializeTuple, SerializeTupleStruct, SerializeTupleVariant,
};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::io::{Read, Write};
use vq_core::{VqError, VqResult};

/// Codec version carried in every frame header. Version 2 added the
/// optional trace-context field to the `ClusterMsg` request envelope;
/// version 3 added the `Heartbeat` envelope variant for the failure
/// detector. Because structs encode field-by-name (absent fields fall
/// back to `#[serde(default)]`) and enum variants encode by name,
/// version-1/2 payloads still decode — the receiver accepts any version
/// in [`MIN_WIRE_VERSION`]..=[`WIRE_VERSION`].
pub const WIRE_VERSION: u8 = 3;

/// Oldest frame version this build still decodes.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Frame magic: rejects cross-protocol garbage (e.g. an HTTP request sent
/// to the binary port) on the first four bytes.
pub const FRAME_MAGIC: [u8; 4] = *b"VQF1";

/// Frames larger than this are treated as corruption, not allocation
/// requests (a garbage length prefix must not OOM the receiver).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven. vq-storage has its own copy for WAL records;
// vq-net cannot depend on vq-storage, and 30 lines beat a layering cycle.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one frame (header + payload) to `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let mut header = [0u8; 13];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = WIRE_VERSION;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[9..13].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// One frame as a byte vector (header + payload).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + payload.len());
    write_frame(&mut out, payload).expect("Vec write cannot fail");
    out
}

/// Read one frame from `r`, verifying magic, version, length and CRC.
///
/// `Ok(None)` means the peer closed the connection cleanly *between*
/// frames (EOF before any header byte). Every other truncation or
/// mismatch is an error: garbage prefixes and torn frames must never be
/// silently skipped, because the stream has lost sync.
pub fn read_frame<R: Read>(r: &mut R) -> VqResult<Option<Vec<u8>>> {
    let mut header = [0u8; 13];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(VqError::Network("torn frame header (EOF)".into()));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(VqError::Network(format!("frame read failed: {e}"))),
        }
    }
    if header[..4] != FRAME_MAGIC {
        return Err(VqError::Corruption("bad frame magic".into()));
    }
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&header[4]) {
        return Err(VqError::Corruption(format!(
            "wire version mismatch: got {}, expected {MIN_WIRE_VERSION}..={WIRE_VERSION}",
            header[4]
        )));
    }
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(VqError::Corruption(format!("frame length {len} exceeds cap")));
    }
    let want_crc = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(VqError::Network("torn frame payload (EOF)".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(VqError::Network(format!("frame read failed: {e}"))),
        }
    }
    if crc32(&payload) != want_crc {
        return Err(VqError::Corruption("frame CRC mismatch".into()));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Value tags
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U8: u8 = 0x03;
const TAG_U16: u8 = 0x04;
const TAG_U32: u8 = 0x05;
const TAG_U64: u8 = 0x06;
const TAG_I64: u8 = 0x07;
const TAG_F32: u8 = 0x08;
const TAG_F64: u8 = 0x09;
const TAG_STR: u8 = 0x0A;
const TAG_BYTES: u8 = 0x0B;
const TAG_SEQ: u8 = 0x0C;
const TAG_MAP: u8 = 0x0D;
const TAG_F32SEQ: u8 = 0x0E;

/// Codec error; converted to [`VqError`] at the API boundary.
#[derive(Debug)]
pub struct WireError(String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    // Inherent so `WireError::custom(..)` resolves unambiguously even with
    // both serde error traits in scope.
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError(msg.to_string())
    }
}

impl SerError for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::custom(msg)
    }
}

impl DeError for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::custom(msg)
    }
}

/// Encode any serde value to its `vbin` bytes (no frame header).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> VqResult<Vec<u8>> {
    let mut ser = BinSerializer { out: Vec::new() };
    value
        .serialize(&mut ser)
        .map_err(|e| VqError::Internal(format!("wire encode: {e}")))?;
    Ok(ser.out)
}

/// Decode a `vbin` value, requiring the buffer to be fully consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> VqResult<T> {
    let mut de = BinDeserializer { input: bytes, pos: 0 };
    let value =
        T::deserialize(&mut de).map_err(|e| VqError::Corruption(format!("wire decode: {e}")))?;
    if de.pos != bytes.len() {
        return Err(VqError::Corruption(format!(
            "wire decode: {} trailing bytes",
            bytes.len() - de.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

fn put_len(out: &mut Vec<u8>, len: usize) -> Result<(), WireError> {
    u32::try_from(len)
        .map(|l| out.extend_from_slice(&l.to_le_bytes()))
        .map_err(|_| WireError::custom("length exceeds u32"))
}

fn put_raw_str(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    put_len(out, s.len())?;
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_uint(out: &mut Vec<u8>, v: u64) {
    if v <= u8::MAX as u64 {
        out.push(TAG_U8);
        out.push(v as u8);
    } else if v <= u16::MAX as u64 {
        out.push(TAG_U16);
        out.extend_from_slice(&(v as u16).to_le_bytes());
    } else if v <= u32::MAX as u64 {
        out.push(TAG_U32);
        out.extend_from_slice(&(v as u32).to_le_bytes());
    } else {
        out.push(TAG_U64);
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Serializer writing `vbin` into an owned buffer.
struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    /// Open a map of `len` entries (structs and string-keyed maps share
    /// the encoding).
    fn open_map(&mut self, len: usize) -> Result<(), WireError> {
        self.out.push(TAG_MAP);
        put_len(&mut self.out, len)
    }

    /// Open the single-entry map that externally tags an enum variant.
    fn open_variant(&mut self, variant: &str) -> Result<(), WireError> {
        self.open_map(1)?;
        put_raw_str(&mut self.out, variant)
    }
}

/// Buffers sequence elements so `end()` can collapse an all-`f32` run
/// into a raw slab.
struct BinSeq<'a> {
    parent: &'a mut BinSerializer,
    buf: BinSerializer,
    count: usize,
}

impl BinSeq<'_> {
    fn finish(self) -> Result<(), WireError> {
        let body = self.buf.out;
        let all_f32 = self.count > 0
            && body.len() == self.count * 5
            && body.chunks_exact(5).all(|c| c[0] == TAG_F32);
        if all_f32 {
            self.parent.out.push(TAG_F32SEQ);
            put_len(&mut self.parent.out, self.count)?;
            for chunk in body.chunks_exact(5) {
                self.parent.out.extend_from_slice(&chunk[1..]);
            }
        } else {
            self.parent.out.push(TAG_SEQ);
            put_len(&mut self.parent.out, self.count)?;
            self.parent.out.extend_from_slice(&body);
        }
        Ok(())
    }
}

impl SerializeSeq for BinSeq<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        self.count += 1;
        value.serialize(&mut self.buf)
    }

    fn end(self) -> Result<(), WireError> {
        self.finish()
    }
}

impl SerializeTuple for BinSeq<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), WireError> {
        self.finish()
    }
}

impl SerializeTupleStruct for BinSeq<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), WireError> {
        self.finish()
    }
}

impl SerializeTupleVariant for BinSeq<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), WireError> {
        self.finish()
    }
}

/// Map/struct body writer; the entry count was already emitted.
struct BinMap<'a> {
    parent: &'a mut BinSerializer,
}

impl SerializeMap for BinMap<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        // Keys must be strings on the wire (JSON-compatible); capture the
        // key through a one-shot serializer that accepts nothing else.
        key.serialize(KeySerializer { out: &mut self.parent.out })
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.parent)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl SerializeStruct for BinMap<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        put_raw_str(&mut self.parent.out, key)?;
        value.serialize(&mut *self.parent)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl SerializeStructVariant for BinMap<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

/// Accepts exactly one string and writes it as a raw (tagless) map key.
struct KeySerializer<'a> {
    out: &'a mut Vec<u8>,
}

impl Serializer for KeySerializer<'_> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = serde::ser::Impossible<(), WireError>;
    type SerializeTuple = serde::ser::Impossible<(), WireError>;
    type SerializeTupleStruct = serde::ser::Impossible<(), WireError>;
    type SerializeTupleVariant = serde::ser::Impossible<(), WireError>;
    type SerializeMap = serde::ser::Impossible<(), WireError>;
    type SerializeStruct = serde::ser::Impossible<(), WireError>;
    type SerializeStructVariant = serde::ser::Impossible<(), WireError>;

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        put_raw_str(self.out, v)
    }

    fn serialize_char(self, v: char) -> Result<(), WireError> {
        put_raw_str(self.out, v.encode_utf8(&mut [0u8; 4]))
    }

    fn serialize_bool(self, _: bool) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_i8(self, _: i8) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_i16(self, _: i16) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_i32(self, _: i32) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_i64(self, _: i64) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_u8(self, _: u8) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_u16(self, _: u16) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_u32(self, _: u32) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_u64(self, _: u64) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_f32(self, _: f32) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_f64(self, _: f64) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_bytes(self, _: &[u8]) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_none(self) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_some<T: Serialize + ?Sized>(self, _: &T) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_unit_struct(self, _: &'static str) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_unit_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
    ) -> Result<(), WireError> {
        put_raw_str(self.out, variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: &T,
    ) -> Result<(), WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_tuple_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleStruct, WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleVariant, WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStruct, WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStructVariant, WireError> {
        Err(WireError::custom("map keys must be strings"))
    }
}

impl<'a> Serializer for &'a mut BinSerializer {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = BinSeq<'a>;
    type SerializeTuple = BinSeq<'a>;
    type SerializeTupleStruct = BinSeq<'a>;
    type SerializeTupleVariant = BinSeq<'a>;
    type SerializeMap = BinMap<'a>;
    type SerializeStruct = BinMap<'a>;
    type SerializeStructVariant = BinMap<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(if v { TAG_TRUE } else { TAG_FALSE });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        if v >= 0 {
            put_uint(&mut self.out, v as u64);
        } else {
            self.out.push(TAG_I64);
            self.out.extend_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        put_uint(&mut self.out, v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.push(TAG_F32);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        // Narrow to f32 when the value survives the round trip, so both
        // float widths of the same number encode identically.
        let narrow = v as f32;
        if narrow as f64 == v {
            return self.serialize_f32(narrow);
        }
        self.out.push(TAG_F64);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_str(v.encode_utf8(&mut [0u8; 4]))
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.out.push(TAG_STR);
        put_raw_str(&mut self.out, v)
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.out.push(TAG_BYTES);
        put_len(&mut self.out, v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(TAG_NULL);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        self.out.push(TAG_NULL);
        Ok(())
    }

    fn serialize_unit_struct(self, _: &'static str) -> Result<(), WireError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.open_variant(variant)?;
        value.serialize(self)
    }

    fn serialize_seq(self, _: Option<usize>) -> Result<BinSeq<'a>, WireError> {
        Ok(BinSeq { parent: self, buf: BinSerializer { out: Vec::new() }, count: 0 })
    }

    fn serialize_tuple(self, _: usize) -> Result<BinSeq<'a>, WireError> {
        self.serialize_seq(None)
    }

    fn serialize_tuple_struct(self, _: &'static str, _: usize) -> Result<BinSeq<'a>, WireError> {
        self.serialize_seq(None)
    }

    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        _: usize,
    ) -> Result<BinSeq<'a>, WireError> {
        self.open_variant(variant)?;
        self.serialize_seq(None)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<BinMap<'a>, WireError> {
        let len = len.ok_or_else(|| WireError::custom("maps need a known length"))?;
        self.open_map(len)?;
        Ok(BinMap { parent: self })
    }

    fn serialize_struct(self, _: &'static str, len: usize) -> Result<BinMap<'a>, WireError> {
        self.open_map(len)?;
        Ok(BinMap { parent: self })
    }

    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<BinMap<'a>, WireError> {
        self.open_variant(variant)?;
        self.open_map(len)?;
        Ok(BinMap { parent: self })
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

/// Deserializer over a `vbin` buffer.
struct BinDeserializer<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> BinDeserializer<'de> {
    fn peek_tag(&self) -> Result<u8, WireError> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or_else(|| WireError::custom("unexpected end of input"))
    }

    fn take_tag(&mut self) -> Result<u8, WireError> {
        let t = self.peek_tag()?;
        self.pos += 1;
        Ok(t)
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.input.len())
            .ok_or_else(|| WireError::custom("unexpected end of input"))?;
        let slice = &self.input[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_len(&mut self) -> Result<usize, WireError> {
        let raw = self.take(4)?;
        let len = u32::from_le_bytes(raw.try_into().expect("4 bytes")) as usize;
        // A length can never exceed what is left in the buffer (even at
        // one byte per element), so garbage lengths die here rather than
        // in an allocation.
        if len > self.input.len() - self.pos {
            return Err(WireError::custom("declared length exceeds input"));
        }
        Ok(len)
    }

    fn take_raw_str(&mut self) -> Result<&'de str, WireError> {
        let len = self.take_len()?;
        std::str::from_utf8(self.take(len)?).map_err(|_| WireError::custom("invalid UTF-8"))
    }

    /// Decode the next value as an integer-bearing tag.
    fn take_int(&mut self) -> Result<IntValue, WireError> {
        match self.take_tag()? {
            TAG_U8 => Ok(IntValue::U(self.take(1)?[0] as u64)),
            TAG_U16 => Ok(IntValue::U(u16::from_le_bytes(
                self.take(2)?.try_into().expect("2 bytes"),
            ) as u64)),
            TAG_U32 => Ok(IntValue::U(u32::from_le_bytes(
                self.take(4)?.try_into().expect("4 bytes"),
            ) as u64)),
            TAG_U64 => Ok(IntValue::U(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))),
            TAG_I64 => Ok(IntValue::I(i64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))),
            t => Err(WireError::custom(format!("expected integer, found tag {t:#x}"))),
        }
    }

    fn take_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Skip one complete value (for `deserialize_ignored_any`).
    fn skip_value(&mut self) -> Result<(), WireError> {
        match self.take_tag()? {
            TAG_NULL | TAG_FALSE | TAG_TRUE => Ok(()),
            TAG_U8 => self.take(1).map(|_| ()),
            TAG_U16 => self.take(2).map(|_| ()),
            TAG_U32 | TAG_F32 => self.take(4).map(|_| ()),
            TAG_U64 | TAG_I64 | TAG_F64 => self.take(8).map(|_| ()),
            TAG_STR | TAG_BYTES => {
                let len = self.take_len()?;
                self.take(len).map(|_| ())
            }
            TAG_SEQ => {
                let len = self.take_len()?;
                for _ in 0..len {
                    self.skip_value()?;
                }
                Ok(())
            }
            TAG_MAP => {
                let len = self.take_len()?;
                for _ in 0..len {
                    self.take_raw_str()?;
                    self.skip_value()?;
                }
                Ok(())
            }
            TAG_F32SEQ => {
                let len = self.take_len()?;
                self.take(len.checked_mul(4).ok_or_else(|| WireError::custom("overflow"))?)
                    .map(|_| ())
            }
            t => Err(WireError::custom(format!("unknown tag {t:#x}"))),
        }
    }
}

enum IntValue {
    U(u64),
    I(i64),
}

impl IntValue {
    fn visit<'de, V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self {
            IntValue::U(v) => visitor.visit_u64(v),
            IntValue::I(v) => visitor.visit_i64(v),
        }
    }
}

/// Sequence reader for [`TAG_SEQ`].
struct BinSeqAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> SeqAccess<'de> for BinSeqAccess<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Sequence reader for [`TAG_F32SEQ`] raw slabs.
struct F32SeqAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> SeqAccess<'de> for F32SeqAccess<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let v = self.de.take_f32()?;
        seed.deserialize(F32Deserializer { value: v }).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Deserializer for one raw `f32` pulled out of a slab.
struct F32Deserializer {
    value: f32,
}

macro_rules! f32_forward {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            visitor.visit_f32(self.value)
        }
    )*};
}

impl<'de> Deserializer<'de> for F32Deserializer {
    type Error = WireError;

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_f64(self.value as f64)
    }

    f32_forward!(
        deserialize_any deserialize_f32 deserialize_ignored_any deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_char deserialize_str deserialize_string deserialize_bytes
        deserialize_byte_buf deserialize_option deserialize_unit deserialize_seq
        deserialize_map deserialize_identifier
    );

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_f32(self.value)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_f32(self.value)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_f32(self.value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_f32(self.value)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_f32(self.value)
    }
}

/// Map reader: raw string keys alternate with values.
struct BinMapAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de> MapAccess<'de> for BinMapAccess<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let key = self.de.take_raw_str()?;
        seed.deserialize(StrDeserializer { value: key }).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Deserializer for a raw key / variant-name string.
struct StrDeserializer<'de> {
    value: &'de str,
}

macro_rules! str_forward {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            visitor.visit_str(self.value)
        }
    )*};
}

impl<'de> Deserializer<'de> for StrDeserializer<'de> {
    type Error = WireError;

    str_forward!(
        deserialize_any deserialize_identifier deserialize_str deserialize_string
        deserialize_char deserialize_ignored_any deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64 deserialize_bytes deserialize_byte_buf
        deserialize_option deserialize_unit deserialize_seq deserialize_map
    );

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_str(self.value)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_str(self.value)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_str(self.value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_str(self.value)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(UnitVariantAccess { variant: self.value })
    }
}

/// Enum access for a unit variant encoded as a bare string.
struct UnitVariantAccess<'de> {
    variant: &'de str,
}

impl<'de> EnumAccess<'de> for UnitVariantAccess<'de> {
    type Error = WireError;
    type Variant = UnitOnly;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, UnitOnly), WireError> {
        let v = seed.deserialize(StrDeserializer { value: self.variant })?;
        Ok((v, UnitOnly))
    }
}

/// Variant access that only permits unit variants.
struct UnitOnly;

impl<'de> VariantAccess<'de> for UnitOnly {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, _: T) -> Result<T::Value, WireError> {
        Err(WireError::custom("expected variant data, found unit variant"))
    }

    fn tuple_variant<V: Visitor<'de>>(self, _: usize, _: V) -> Result<V::Value, WireError> {
        Err(WireError::custom("expected variant data, found unit variant"))
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _: &'static [&'static str],
        _: V,
    ) -> Result<V::Value, WireError> {
        Err(WireError::custom("expected variant data, found unit variant"))
    }
}

/// Enum access for a data-carrying variant (single-entry map).
struct DataVariantAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    variant: &'de str,
}

impl<'de, 'a> EnumAccess<'de> for DataVariantAccess<'a, 'de> {
    type Error = WireError;
    type Variant = DataVariant<'a, 'de>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, DataVariant<'a, 'de>), WireError> {
        let v = seed.deserialize(StrDeserializer { value: self.variant })?;
        Ok((v, DataVariant { de: self.de }))
    }
}

/// Reads the payload of a data-carrying variant.
struct DataVariant<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de> VariantAccess<'de> for DataVariant<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        // Tolerate a unit read of a data variant by skipping the payload.
        self.de.skip_value()
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, _: usize, visitor: V) -> Result<V::Value, WireError> {
        self.de.deserialize_seq(visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.de.deserialize_map(visitor)
    }
}

impl<'de> Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.peek_tag()? {
            TAG_NULL => {
                self.pos += 1;
                visitor.visit_unit()
            }
            TAG_FALSE => {
                self.pos += 1;
                visitor.visit_bool(false)
            }
            TAG_TRUE => {
                self.pos += 1;
                visitor.visit_bool(true)
            }
            TAG_U8 | TAG_U16 | TAG_U32 | TAG_U64 | TAG_I64 => self.take_int()?.visit(visitor),
            TAG_F32 => {
                self.pos += 1;
                let v = self.take_f32()?;
                visitor.visit_f32(v)
            }
            TAG_F64 => {
                self.pos += 1;
                let v = self.take_f64()?;
                visitor.visit_f64(v)
            }
            TAG_STR => {
                self.pos += 1;
                let s = self.take_raw_str()?;
                visitor.visit_str(s)
            }
            TAG_BYTES => {
                self.pos += 1;
                let len = self.take_len()?;
                let raw = self.take(len)?;
                visitor.visit_bytes(raw)
            }
            TAG_SEQ => {
                self.pos += 1;
                let len = self.take_len()?;
                visitor.visit_seq(BinSeqAccess { de: self, remaining: len })
            }
            TAG_F32SEQ => {
                self.pos += 1;
                let len = self.take_len()?;
                visitor.visit_seq(F32SeqAccess { de: self, remaining: len })
            }
            TAG_MAP => {
                self.pos += 1;
                let len = self.take_len()?;
                visitor.visit_map(BinMapAccess { de: self, remaining: len })
            }
            t => Err(WireError::custom(format!("unknown tag {t:#x}"))),
        }
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_FALSE => visitor.visit_bool(false),
            TAG_TRUE => visitor.visit_bool(true),
            t => Err(WireError::custom(format!("expected bool, found tag {t:#x}"))),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.take_int()?.visit(visitor)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_F32 => {
                let v = self.take_f32()?;
                visitor.visit_f32(v)
            }
            TAG_F64 => {
                let v = self.take_f64()?;
                visitor.visit_f64(v)
            }
            t => Err(WireError::custom(format!("expected float, found tag {t:#x}"))),
        }
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_F32 => {
                let v = self.take_f32()?;
                visitor.visit_f64(v as f64)
            }
            TAG_F64 => {
                let v = self.take_f64()?;
                visitor.visit_f64(v)
            }
            TAG_U8 | TAG_U16 | TAG_U32 | TAG_U64 | TAG_I64 => {
                self.pos -= 1;
                match self.take_int()? {
                    IntValue::U(v) => visitor.visit_f64(v as f64),
                    IntValue::I(v) => visitor.visit_f64(v as f64),
                }
            }
            t => Err(WireError::custom(format!("expected float, found tag {t:#x}"))),
        }
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_STR => {
                let s = self.take_raw_str()?;
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => visitor.visit_char(c),
                    _ => Err(WireError::custom("expected single-char string")),
                }
            }
            t => Err(WireError::custom(format!("expected char, found tag {t:#x}"))),
        }
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_STR => {
                let s = self.take_raw_str()?;
                visitor.visit_str(s)
            }
            t => Err(WireError::custom(format!("expected string, found tag {t:#x}"))),
        }
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_BYTES => {
                let len = self.take_len()?;
                let raw = self.take(len)?;
                visitor.visit_bytes(raw)
            }
            t => Err(WireError::custom(format!("expected bytes, found tag {t:#x}"))),
        }
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        if self.peek_tag()? == TAG_NULL {
            self.pos += 1;
            visitor.visit_none()
        } else {
            visitor.visit_some(self)
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_NULL => visitor.visit_unit(),
            t => Err(WireError::custom(format!("expected unit, found tag {t:#x}"))),
        }
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_SEQ => {
                let len = self.take_len()?;
                visitor.visit_seq(BinSeqAccess { de: self, remaining: len })
            }
            TAG_F32SEQ => {
                let len = self.take_len()?;
                visitor.visit_seq(F32SeqAccess { de: self, remaining: len })
            }
            t => Err(WireError::custom(format!("expected sequence, found tag {t:#x}"))),
        }
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_MAP => {
                let len = self.take_len()?;
                visitor.visit_map(BinMapAccess { de: self, remaining: len })
            }
            t => Err(WireError::custom(format!("expected map, found tag {t:#x}"))),
        }
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_map(visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        match self.take_tag()? {
            TAG_STR => {
                let variant = self.take_raw_str()?;
                visitor.visit_enum(UnitVariantAccess { variant })
            }
            TAG_MAP => {
                let len = self.take_len()?;
                if len != 1 {
                    return Err(WireError::custom("enum map must have one entry"));
                }
                let variant = self.take_raw_str()?;
                visitor.visit_enum(DataVariantAccess { de: self, variant })
            }
            t => Err(WireError::custom(format!("expected enum, found tag {t:#x}"))),
        }
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.skip_value()?;
        visitor.visit_unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_bytes(value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&-1i64);
        roundtrip(&i64::MIN);
        roundtrip(&1.5f32);
        roundtrip(&1.0e300f64);
        roundtrip(&"hello".to_string());
        roundtrip(&String::new());
        roundtrip(&Some(7u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u32>::new());
        roundtrip(&(1u32, "two".to_string(), 3.0f32));
    }

    #[test]
    fn integers_use_minimal_width() {
        assert_eq!(to_bytes(&0u64).unwrap().len(), 2);
        assert_eq!(to_bytes(&255u64).unwrap().len(), 2);
        assert_eq!(to_bytes(&256u64).unwrap().len(), 3);
        assert_eq!(to_bytes(&65_536u64).unwrap().len(), 5);
        assert_eq!(to_bytes(&(1u64 << 40)).unwrap().len(), 9);
        // Same value, same bytes, regardless of the declared integer type.
        assert_eq!(to_bytes(&7u8).unwrap(), to_bytes(&7u64).unwrap());
        assert_eq!(to_bytes(&7i32).unwrap(), to_bytes(&7u64).unwrap());
    }

    #[test]
    fn f32_sequences_collapse_to_raw_slabs() {
        let v: Vec<f32> = (0..128).map(|i| i as f32 * 0.25).collect();
        let bytes = to_bytes(&v).unwrap();
        // tag + len + 4 bytes per element — not 5.
        assert_eq!(bytes.len(), 1 + 4 + 4 * v.len());
        assert_eq!(bytes[0], TAG_F32SEQ);
        let back: Vec<f32> = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn f64_narrows_when_lossless() {
        // 1.5 survives the f64 -> f32 round trip; 1e300 does not.
        assert_eq!(to_bytes(&1.5f64).unwrap().len(), 5);
        assert_eq!(to_bytes(&1.0e300f64).unwrap().len(), 9);
        let back: f64 = from_bytes(&to_bytes(&1.5f64).unwrap()).unwrap();
        assert_eq!(back, 1.5);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        id: u64,
        name: String,
        score: f32,
        tags: Vec<String>,
        maybe: Option<bool>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u32, String),
        Named { x: f32, y: f32 },
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(&Sample {
            id: 42,
            name: "qdrant".into(),
            score: 0.87,
            tags: vec!["hpc".into(), "polaris".into()],
            maybe: Some(true),
        });
        roundtrip(&Shape::Unit);
        roundtrip(&Shape::Newtype(9));
        roundtrip(&Shape::Tuple(1, "two".into()));
        roundtrip(&Shape::Named { x: 1.0, y: -2.0 });
        roundtrip(&vec![Shape::Unit, Shape::Newtype(1), Shape::Named { x: 0.0, y: 0.0 }]);
    }

    #[test]
    fn maps_roundtrip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        roundtrip(&m);
    }

    #[test]
    fn bytes_values_roundtrip_via_frames() {
        let payload = to_bytes(&vec![1u32, 2, 3]).unwrap();
        let frame = encode_frame(&payload);
        let mut cursor = &frame[..];
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, payload);
        // Clean EOF between frames.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn torn_and_corrupt_frames_are_rejected() {
        let frame = encode_frame(b"payload bytes");
        // Torn header.
        let mut torn = &frame[..7];
        assert!(matches!(read_frame(&mut torn), Err(VqError::Network(_))));
        // Torn payload.
        let mut torn = &frame[..frame.len() - 3];
        assert!(matches!(read_frame(&mut torn), Err(VqError::Network(_))));
        // Garbage prefix (bad magic).
        let mut garbage = frame.clone();
        garbage[0] = b'X';
        assert!(matches!(
            read_frame(&mut &garbage[..]),
            Err(VqError::Corruption(_))
        ));
        // Version skew: future versions rejected, pre-MIN rejected.
        let mut skew = frame.clone();
        skew[4] = 99;
        assert!(matches!(read_frame(&mut &skew[..]), Err(VqError::Corruption(_))));
        let mut ancient = frame.clone();
        ancient[4] = MIN_WIRE_VERSION - 1;
        assert!(matches!(read_frame(&mut &ancient[..]), Err(VqError::Corruption(_))));
        // Flipped payload bit fails the CRC.
        let mut flipped = frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut &flipped[..]),
            Err(VqError::Corruption(_))
        ));
        // Absurd length.
        let mut huge = frame;
        huge[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&mut &huge[..]), Err(VqError::Corruption(_))));
    }

    #[test]
    fn older_wire_versions_still_decode() {
        // A peer running the previous codec stamps version 1; this build
        // must still read its frames (value-level compat is serde's
        // field-by-name + #[serde(default)] job).
        let mut frame = encode_frame(b"old peer payload");
        frame[4] = MIN_WIRE_VERSION;
        let back = read_frame(&mut &frame[..]).unwrap().unwrap();
        assert_eq!(back, b"old peer payload");
        // And every version in the accepted window decodes.
        for v in MIN_WIRE_VERSION..=WIRE_VERSION {
            let mut f = encode_frame(b"x");
            f[4] = v;
            assert!(read_frame(&mut &f[..]).unwrap().is_some(), "version {v}");
        }
    }

    #[test]
    fn decode_rejects_truncated_values_and_trailing_bytes() {
        let bytes = to_bytes(&vec![1.0f32; 16]).unwrap();
        assert!(from_bytes::<Vec<f32>>(&bytes[..bytes.len() - 2]).is_err());
        let mut extra = bytes;
        extra.push(0);
        assert!(from_bytes::<Vec<f32>>(&extra).is_err());
        // A declared length past the end of the buffer must not allocate.
        let mut lie = vec![TAG_SEQ];
        lie.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(from_bytes::<Vec<u8>>(&lie).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
