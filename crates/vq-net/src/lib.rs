//! # vq-net
//!
//! The interconnect layer, in two halves:
//!
//! * [`cost`] — an analytic network **cost model**: per-hop latency,
//!   per-link bandwidth, and topology-dependent hop counts (flat crossbar
//!   or a Dragonfly like Polaris's Slingshot 11). The discrete-event
//!   simulation asks this model "how long does moving N bytes from node A
//!   to node B take?" — it never moves real bytes.
//! * [`transport`] — a real in-process **message transport** built on
//!   crossbeam channels, used when the distributed engine actually runs
//!   (worker threads exchanging real requests). The transport can
//!   optionally impose the cost model's delays on delivery so live runs
//!   exhibit HPC-like latency ratios.
//! * [`fault`] — a seeded, deterministic **fault plan** the transport can
//!   evaluate on every send: per-edge drop / delay / duplicate plus
//!   kill-after-N-messages crashes, so chaos soaks are reproducible.
//! * [`wire`] — the **binary codec**: a compact serde Serializer /
//!   Deserializer plus CRC-checked length-prefixed framing, shared by
//!   every component that moves real bytes.
//! * [`tcp`] — a **socket transport** implementing the same
//!   [`Transport`] contract as the in-proc switchboard over real
//!   `TcpStream`s, with per-peer writer threads and
//!   reconnect-on-broken-pipe.
//!
//! The cluster compiles against the [`Transport`] / [`TransportEndpoint`]
//! traits, so the in-proc and TCP fabrics are interchangeable; the fault
//! injector and cost model apply uniformly to both. Keeping cost and
//! transport separate means the same model constants drive both the
//! simulator and the live engine.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod fault;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use cost::{LinkModel, NetworkModel, Topology};
pub use fault::{FaultAction, FaultPlan, FaultRule};
pub use tcp::{TcpEndpoint, TcpTransport};
pub use transport::{
    Endpoint, Envelope, Switchboard, Transport, TransportEndpoint, TransportStats,
};
pub use wire::{MIN_WIRE_VERSION, WIRE_VERSION};
