//! Real in-process message transport.
//!
//! When the distributed engine actually runs (worker threads serving real
//! requests), messages travel through this transport: a [`Switchboard`]
//! hands out [`Endpoint`]s keyed by node id, and any endpoint can send to
//! any other. Built on crossbeam's unbounded channels.
//!
//! Optionally a [`cost::NetworkModel`](crate::cost::NetworkModel) can be
//! attached; delivery then sleeps the modeled transfer time, so live
//! laptop-scale runs preserve the latency *ratios* of the modeled fabric
//! (loopback vs intra-group vs inter-group). Zero-latency delivery is the
//! default for unit tests.

use crate::cost::NetworkModel;
use crate::fault::{FaultPlan, FaultState};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use vq_core::{VqError, VqResult};

/// One side of a [`Transport`]: owned by a single worker/client, it can
/// send to any registered peer and receive its own inbox.
///
/// This is the surface the cluster actually talks through; `Switchboard`'s
/// [`Endpoint`] (in-process channels) and `TcpTransport`'s endpoint (real
/// sockets) both implement it, which is what lets `vq-cluster` compile
/// against `T: Transport` instead of a concrete wiring.
pub trait TransportEndpoint<M>: Send {
    /// This endpoint's id.
    fn id(&self) -> u32;

    /// Send `payload` to endpoint `to` (zero-sized for the cost model).
    fn send(&self, to: u32, payload: M) -> VqResult<()>;

    /// Send `payload`, declaring its wire size for the cost model.
    fn send_sized(&self, to: u32, payload: M, bytes: u64) -> VqResult<()>;

    /// Block for the next message.
    fn recv(&self) -> VqResult<Envelope<M>>;

    /// Block for the next message up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> VqResult<Envelope<M>>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope<M>>;
}

/// A message fabric: registers endpoints by id, routes between them, and
/// supports the fault/cost instrumentation the chaos and modeling layers
/// rely on.
///
/// Implementations must behave identically at the contract level so the
/// cluster cannot tell them apart (the chaos soak runs against both):
///
/// * sends to an unregistered or crashed id fail with
///   [`VqError::Network`];
/// * [`Transport::crash`] is an unpolite deregister — queued messages
///   drain, then the endpoint's `recv` errors;
/// * re-registering an id revives it with a fresh fault budget;
/// * an installed [`FaultPlan`] and any [`NetworkModel`] apply on the
///   send path.
pub trait Transport<M>: Clone + Send + Sync + 'static {
    /// Endpoint type handed out by [`Transport::register`].
    type Endpoint: TransportEndpoint<M>;

    /// Register endpoint `id` hosted on `node`; replaces any previous
    /// endpoint with the same id.
    fn register(&self, id: u32, node: u32) -> Self::Endpoint;

    /// Remove an endpoint; future sends to it fail.
    fn deregister(&self, id: u32);

    /// Crash endpoint `id` from the network's point of view (no
    /// handshake; queued messages still drain).
    fn crash(&self, id: u32);

    /// Install (or replace) a fault plan; subsequent sends evaluate it.
    fn install_faults(&self, plan: FaultPlan);

    /// Remove the fault plan; the network runs clean again.
    fn clear_faults(&self);

    /// Endpoints currently dead from a `KillAfter` fault, ascending.
    fn fault_killed(&self) -> Vec<u32>;

    /// Aggregate traffic counters since creation.
    fn stats(&self) -> TransportStats;

    /// Ids of all registered endpoints, ascending.
    fn endpoints(&self) -> Vec<u32>;
}

/// A transport message: source, destination, payload.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending endpoint id.
    pub from: u32,
    /// Receiving endpoint id.
    pub to: u32,
    /// Application payload.
    pub payload: M,
}

struct Shared<M> {
    inboxes: RwLock<HashMap<u32, Sender<Envelope<M>>>>,
    /// Node id of each endpoint (for the cost model; multiple endpoints
    /// may live on one node).
    placement: RwLock<HashMap<u32, u32>>,
    model: Option<NetworkModel>,
    /// Per-endpoint inbox capacity; `None` = unbounded (the default, and
    /// what the seed tests pin). With a bound, a send to a full inbox
    /// blocks the sender and bumps `net.backpressure_blocks`.
    capacity: Option<usize>,
    /// Installed fault plan; `None` = clean network.
    faults: RwLock<Option<Arc<FaultState>>>,
    messages_sent: std::sync::atomic::AtomicU64,
    bytes_sent: std::sync::atomic::AtomicU64,
    /// Bytes that crossed node boundaries (fabric traffic, as opposed to
    /// loopback) — the number an interconnect dashboard would show.
    fabric_bytes: std::sync::atomic::AtomicU64,
}

/// Aggregate transport counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Messages delivered.
    pub messages: u64,
    /// Declared payload bytes (all traffic).
    pub bytes: u64,
    /// Declared payload bytes between distinct nodes only.
    pub fabric_bytes: u64,
}

/// Registry connecting endpoints. Clone freely; clones share the wiring.
pub struct Switchboard<M> {
    shared: Arc<Shared<M>>,
}

impl<M> Clone for Switchboard<M> {
    fn clone(&self) -> Self {
        Switchboard {
            shared: self.shared.clone(),
        }
    }
}

impl<M: Send + 'static> Switchboard<M> {
    /// Switchboard with instantaneous delivery.
    pub fn new() -> Self {
        Self::with_options(None, None)
    }

    /// Switchboard that delays deliveries per the cost model, using each
    /// endpoint's registered node placement. Payload size for the
    /// bandwidth term is provided per send via
    /// [`Endpoint::send_sized`].
    pub fn with_model(model: NetworkModel) -> Self {
        Self::with_options(Some(model), None)
    }

    /// Fully-configured switchboard: an optional cost model plus an
    /// optional per-endpoint inbox capacity. With a capacity, a send to a
    /// full inbox blocks until the receiver drains (backpressure) instead
    /// of growing the queue without bound, and each such stall increments
    /// the `net.backpressure_blocks` counter.
    pub fn with_options(model: Option<NetworkModel>, capacity: Option<usize>) -> Self {
        Switchboard {
            shared: Arc::new(Shared {
                inboxes: RwLock::new(HashMap::new()),
                placement: RwLock::new(HashMap::new()),
                model,
                capacity,
                faults: RwLock::new(None),
                messages_sent: std::sync::atomic::AtomicU64::new(0),
                bytes_sent: std::sync::atomic::AtomicU64::new(0),
                fabric_bytes: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Register endpoint `id` hosted on `node`. Returns its endpoint.
    ///
    /// Re-registering an id replaces the previous endpoint (its receiver
    /// starts draining new messages).
    pub fn register(&self, id: u32, node: u32) -> Endpoint<M> {
        let (tx, rx) = match self.shared.capacity {
            Some(cap) => bounded(cap),
            None => unbounded(),
        };
        self.shared.inboxes.write().insert(id, tx);
        self.shared.placement.write().insert(id, node);
        // A restarted endpoint gets a fresh fault lifetime (its KillAfter
        // budget starts over).
        if let Some(faults) = self.shared.faults.read().as_ref() {
            faults.revive(id);
        }
        Endpoint {
            id,
            rx,
            shared: self.shared.clone(),
        }
    }

    /// Remove an endpoint; future sends to it fail.
    pub fn deregister(&self, id: u32) {
        self.shared.inboxes.write().remove(&id);
        self.shared.placement.write().remove(&id);
    }

    /// Install (or replace) a fault plan; subsequent sends evaluate it.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.shared.faults.write() = Some(Arc::new(FaultState::new(plan)));
    }

    /// Remove the fault plan; the network runs clean again.
    pub fn clear_faults(&self) {
        *self.shared.faults.write() = None;
    }

    /// Endpoints currently dead from a `KillAfter` fault, ascending.
    ///
    /// The cluster's chaos driver polls this to learn that an injected
    /// crash has fired (the killed worker cannot report its own death).
    pub fn fault_killed(&self) -> Vec<u32> {
        self.shared
            .faults
            .read()
            .as_ref()
            .map(|f| f.killed())
            .unwrap_or_default()
    }

    /// Crash endpoint `id` from the network's point of view: its inbox is
    /// yanked without any deregistration handshake, so in-flight and
    /// future sends fail exactly like sends to a dead host, and the
    /// endpoint's own `recv` reports the transport gone.
    pub fn crash(&self, id: u32) {
        self.shared.inboxes.write().remove(&id);
        // Placement is left in place: a replacement endpoint for the same
        // id will re-register and overwrite it anyway, and cost modeling
        // of in-flight traffic should not panic meanwhile.
    }

    /// Aggregate traffic counters since creation.
    pub fn stats(&self) -> TransportStats {
        use std::sync::atomic::Ordering::Relaxed;
        TransportStats {
            messages: self.shared.messages_sent.load(Relaxed),
            bytes: self.shared.bytes_sent.load(Relaxed),
            fabric_bytes: self.shared.fabric_bytes.load(Relaxed),
        }
    }

    /// Ids of all registered endpoints, ascending.
    pub fn endpoints(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.shared.inboxes.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

impl<M: Send + 'static> Default for Switchboard<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Enqueue into an inbox, blocking (and counting the stall) when a
/// bounded inbox is full. Unbounded inboxes never take the slow path.
fn push_with_backpressure<M>(tx: &Sender<Envelope<M>>, env: Envelope<M>) -> Result<(), ()> {
    match tx.try_send(env) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(env)) => {
            vq_obs::count("net.backpressure_blocks", 1);
            tx.send(env).map_err(|_| ())
        }
        Err(TrySendError::Disconnected(_)) => Err(()),
    }
}

/// One endpoint: can send to any registered id and receive its own inbox.
pub struct Endpoint<M> {
    id: u32,
    rx: Receiver<Envelope<M>>,
    shared: Arc<Shared<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Send `payload` to endpoint `to` (treated as zero-sized for the
    /// bandwidth term).
    pub fn send(&self, to: u32, payload: M) -> VqResult<()>
    where
        M: Clone,
    {
        self.send_sized(to, payload, 0)
    }

    /// Send `payload`, declaring its wire size for the cost model.
    ///
    /// With a model attached, the *sender* bears the transfer delay
    /// (stream semantics: the send call returns when the bytes are on the
    /// wire); this keeps the live engine simple while preserving ordering.
    ///
    /// With a fault plan installed, the message may additionally be
    /// dropped (send still reports success — the bytes left the NIC),
    /// delayed, duplicated (hence `M: Clone`), or be the one that crashes
    /// its destination.
    pub fn send_sized(&self, to: u32, payload: M, bytes: u64) -> VqResult<()>
    where
        M: Clone,
    {
        use std::sync::atomic::Ordering::Relaxed;
        let (src, dst) = {
            let placement = self.shared.placement.read();
            (
                placement.get(&self.id).copied(),
                placement.get(&to).copied(),
            )
        };
        self.shared.messages_sent.fetch_add(1, Relaxed);
        self.shared.bytes_sent.fetch_add(bytes, Relaxed);
        if let (Some(a), Some(b)) = (src, dst) {
            if a != b {
                self.shared.fabric_bytes.fetch_add(bytes, Relaxed);
            }
        }
        if let Some(model) = &self.shared.model {
            if let (Some(a), Some(b)) = (src, dst) {
                let secs = model.transfer_secs(a, b, bytes);
                if secs > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(secs));
                }
            }
        }
        let faults = self.shared.faults.read().clone();
        let verdict = faults.as_ref().map(|f| f.on_send(self.id, to));
        if let Some(v) = &verdict {
            if v.extra_delay > Duration::ZERO {
                std::thread::sleep(v.extra_delay);
            }
            if !v.deliver {
                if v.dest_dead {
                    // The destination crashed earlier; make sure its inbox
                    // is gone and fail like a send to a dead host.
                    self.shared.inboxes.write().remove(&to);
                    return Err(VqError::Network(format!("endpoint {to} crashed")));
                }
                if v.refused {
                    // Connection refused/reset: sender-visible failure,
                    // destination stays alive and registered.
                    return Err(VqError::Network(format!(
                        "connection to endpoint {to} refused"
                    )));
                }
                // Dropped on the wire: the sender cannot tell.
                return Ok(());
            }
        }
        let tx = {
            let inboxes = self.shared.inboxes.read();
            inboxes
                .get(&to)
                .cloned()
                .ok_or_else(|| VqError::Network(format!("endpoint {to} not registered")))?
        };
        let copies = verdict.as_ref().map_or(1, |v| v.copies);
        for _ in 1..copies {
            let _ = push_with_backpressure(
                &tx,
                Envelope {
                    from: self.id,
                    to,
                    payload: payload.clone(),
                },
            );
        }
        let sent = push_with_backpressure(
            &tx,
            Envelope {
                from: self.id,
                to,
                payload,
            },
        )
        .map_err(|_| VqError::Network(format!("endpoint {to} hung up")));
        if verdict.as_ref().is_some_and(|v| v.kill_after_delivery) {
            // That delivery was the destination's last: crash it now, with
            // the message still sitting unread in its inbox.
            self.shared.inboxes.write().remove(&to);
        }
        sent
    }

    /// Block for the next message.
    pub fn recv(&self) -> VqResult<Envelope<M>> {
        self.rx
            .recv()
            .map_err(|_| VqError::Network("transport shut down".into()))
    }

    /// Block for the next message up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> VqResult<Envelope<M>> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => VqError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => {
                VqError::Network("transport shut down".into())
            }
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }
}

impl<M: Clone + Send + 'static> TransportEndpoint<M> for Endpoint<M> {
    fn id(&self) -> u32 {
        Endpoint::id(self)
    }

    fn send(&self, to: u32, payload: M) -> VqResult<()> {
        Endpoint::send(self, to, payload)
    }

    fn send_sized(&self, to: u32, payload: M, bytes: u64) -> VqResult<()> {
        Endpoint::send_sized(self, to, payload, bytes)
    }

    fn recv(&self) -> VqResult<Envelope<M>> {
        Endpoint::recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> VqResult<Envelope<M>> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        Endpoint::try_recv(self)
    }
}

impl<M: Clone + Send + 'static> Transport<M> for Switchboard<M> {
    type Endpoint = Endpoint<M>;

    fn register(&self, id: u32, node: u32) -> Endpoint<M> {
        Switchboard::register(self, id, node)
    }

    fn deregister(&self, id: u32) {
        Switchboard::deregister(self, id)
    }

    fn crash(&self, id: u32) {
        Switchboard::crash(self, id)
    }

    fn install_faults(&self, plan: FaultPlan) {
        Switchboard::install_faults(self, plan)
    }

    fn clear_faults(&self) {
        Switchboard::clear_faults(self)
    }

    fn fault_killed(&self) -> Vec<u32> {
        Switchboard::fault_killed(self)
    }

    fn stats(&self) -> TransportStats {
        Switchboard::stats(self)
    }

    fn endpoints(&self) -> Vec<u32> {
        Switchboard::endpoints(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let sb: Switchboard<String> = Switchboard::new();
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        a.send(2, "hello".into()).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.from, 1);
        assert_eq!(env.to, 2);
        assert_eq!(env.payload, "hello");
    }

    #[test]
    fn send_to_unknown_endpoint_fails() {
        let sb: Switchboard<u8> = Switchboard::new();
        let a = sb.register(1, 0);
        assert!(matches!(a.send(99, 0), Err(VqError::Network(_))));
    }

    #[test]
    fn deregistered_endpoint_unreachable() {
        let sb: Switchboard<u8> = Switchboard::new();
        let a = sb.register(1, 0);
        let _b = sb.register(2, 0);
        sb.deregister(2);
        assert!(a.send(2, 7).is_err());
        assert_eq!(sb.endpoints(), vec![1]);
    }

    #[test]
    fn cross_thread_messaging() {
        let sb: Switchboard<u64> = Switchboard::new();
        let server = sb.register(0, 0);
        let client = sb.register(1, 0);
        let handle = std::thread::spawn(move || {
            // Echo doubled values until 0 arrives.
            loop {
                let env = server.recv().unwrap();
                if env.payload == 0 {
                    break;
                }
                server.send(env.from, env.payload * 2).unwrap();
            }
        });
        for i in 1..=5u64 {
            client.send(0, i).unwrap();
            assert_eq!(client.recv().unwrap().payload, i * 2);
        }
        client.send(0, 0).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn try_recv_and_timeout() {
        let sb: Switchboard<u8> = Switchboard::new();
        let a = sb.register(1, 0);
        assert!(a.try_recv().is_none());
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(VqError::Timeout)
        ));
    }

    #[test]
    fn fifo_order_per_pair() {
        let sb: Switchboard<u32> = Switchboard::new();
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        for i in 0..100 {
            a.send(2, i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(b.recv().unwrap().payload, i);
        }
    }

    #[test]
    fn stats_count_messages_and_fabric_bytes() {
        let sb: Switchboard<u8> = Switchboard::new();
        let a = sb.register(1, 0); // node 0
        let _b = sb.register(2, 0); // node 0 (loopback peer)
        let _c = sb.register(3, 1); // node 1 (fabric peer)
        a.send_sized(2, 1, 100).unwrap(); // loopback
        a.send_sized(3, 2, 250).unwrap(); // fabric
        a.send(3, 3).unwrap(); // fabric, zero-sized
        let stats = sb.stats();
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.bytes, 350);
        assert_eq!(stats.fabric_bytes, 250, "loopback bytes excluded");
    }

    #[test]
    fn fault_drop_loses_messages_silently() {
        let sb: Switchboard<u32> = Switchboard::new();
        sb.install_faults(FaultPlan::new(5).drop_on(Some(1), Some(2), 1.0));
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        a.send(2, 7).unwrap(); // sender sees success
        assert!(b.try_recv().is_none(), "message was dropped on the wire");
        // The reverse edge is clean.
        b.send(1, 9).unwrap();
        assert_eq!(a.recv().unwrap().payload, 9);
        sb.clear_faults();
        a.send(2, 8).unwrap();
        assert_eq!(b.recv().unwrap().payload, 8);
    }

    #[test]
    fn fault_duplicate_delivers_twice() {
        let sb: Switchboard<u32> = Switchboard::new();
        sb.install_faults(FaultPlan::new(5).duplicate_on(None, Some(2), 1.0));
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        a.send(2, 7).unwrap();
        assert_eq!(b.recv().unwrap().payload, 7);
        assert_eq!(b.recv().unwrap().payload, 7);
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn fault_delay_injects_latency() {
        let sb: Switchboard<u8> = Switchboard::new();
        sb.install_faults(FaultPlan::new(5).delay_on(
            None,
            None,
            1.0,
            Duration::from_millis(10),
        ));
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        let t0 = std::time::Instant::now();
        a.send(2, 1).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(10));
        assert_eq!(b.recv().unwrap().payload, 1);
    }

    #[test]
    fn fault_kill_after_n_crashes_the_destination() {
        let sb: Switchboard<u32> = Switchboard::new();
        sb.install_faults(FaultPlan::new(5).kill_after(2, 2));
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        a.send(2, 1).unwrap();
        a.send(2, 2).unwrap(); // fatal delivery
        assert_eq!(sb.fault_killed(), vec![2]);
        // Already-queued messages drain, then the endpoint sees the
        // transport gone — the crash shape a dying worker observes.
        assert_eq!(b.recv().unwrap().payload, 1);
        assert_eq!(b.recv().unwrap().payload, 2);
        assert!(b.recv().is_err());
        // Senders now fail like they would against a dead host.
        assert!(matches!(a.send(2, 3), Err(VqError::Network(_))));
        // Re-registering revives the id with a fresh budget.
        let b2 = sb.register(2, 0);
        assert!(sb.fault_killed().is_empty());
        a.send(2, 4).unwrap();
        assert_eq!(b2.recv().unwrap().payload, 4);
    }

    #[test]
    fn crash_is_an_unpolite_deregister() {
        let sb: Switchboard<u32> = Switchboard::new();
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        a.send(2, 1).unwrap();
        sb.crash(2);
        assert_eq!(b.recv().unwrap().payload, 1, "queued messages drain");
        assert!(b.recv().is_err(), "then the transport is gone");
        assert!(a.send(2, 2).is_err());
    }

    #[test]
    fn modeled_delivery_still_arrives() {
        use crate::cost::{LinkModel, NetworkModel, Topology};
        let model = NetworkModel {
            link: LinkModel {
                latency_secs: 1e-4,
                bandwidth_bps: 1e9,
                loopback_secs: 1e-5,
                loopback_bps: 1e10,
            },
            topology: Topology::Flat,
        };
        let sb: Switchboard<u8> = Switchboard::with_model(model);
        let a = sb.register(1, 0);
        let b = sb.register(2, 1);
        let t0 = std::time::Instant::now();
        a.send_sized(2, 42, 1000).unwrap();
        assert_eq!(b.recv().unwrap().payload, 42);
        assert!(t0.elapsed() >= Duration::from_secs_f64(1e-4));
    }

    #[test]
    fn bounded_inbox_blocks_instead_of_growing() {
        let sb: Switchboard<u32> = Switchboard::with_options(None, Some(2));
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        a.send(2, 0).unwrap();
        a.send(2, 1).unwrap();
        // Third send must wait for the receiver to drain a slot.
        let sender = std::thread::spawn(move || {
            a.send(2, 2).unwrap();
            a
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!sender.is_finished(), "send should be blocked on the full inbox");
        assert_eq!(b.recv().unwrap().payload, 0);
        let a = sender.join().unwrap();
        assert_eq!(b.recv().unwrap().payload, 1);
        assert_eq!(b.recv().unwrap().payload, 2);
        drop(a);
    }

    #[test]
    fn backpressure_stalls_are_counted() {
        let obs = vq_obs::ObsGuard::install(Arc::new(vq_obs::Recorder::new(16)));
        let sb: Switchboard<u32> = Switchboard::with_options(None, Some(1));
        let a = sb.register(1, 0);
        let b = sb.register(2, 0);
        a.send(2, 0).unwrap();
        // The inbox (capacity 1) is now full: this send observes the full
        // queue, counts the stall, and blocks until the receiver drains.
        let sender = std::thread::spawn(move || a.send(2, 1).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.recv().unwrap().payload, 0);
        sender.join().unwrap();
        assert_eq!(b.recv().unwrap().payload, 1);
        let snap = obs.recorder().registry().snapshot();
        assert!(
            snap.counter("net.backpressure_blocks") >= 1,
            "full bounded inbox must count a backpressure stall"
        );
    }

    /// Compile-and-run proof that the cluster-facing trait surface is
    /// object-free generic: this helper only knows `T: Transport`.
    fn ping_pong<T: Transport<u64>>(transport: T) {
        let a = transport.register(1, 0);
        let b = transport.register(2, 0);
        TransportEndpoint::send(&a, 2, 99).unwrap();
        let env = TransportEndpoint::recv(&b).unwrap();
        assert_eq!(env.payload, 99);
        assert_eq!(TransportEndpoint::id(&b), 2);
        assert_eq!(transport.endpoints(), vec![1, 2]);
        transport.crash(1);
        assert!(TransportEndpoint::send(&b, 1, 1).is_err());
    }

    #[test]
    fn switchboard_satisfies_transport_trait() {
        ping_pong(Switchboard::new());
    }
}
