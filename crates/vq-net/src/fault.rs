//! Deterministic fault injection for the in-process transport.
//!
//! A [`FaultPlan`] is a seeded list of rules, each scoped to an edge
//! pattern (any combination of source and destination endpoint) and one
//! action: drop, delay, duplicate, or kill-the-destination-after-N
//! delivered messages. The plan is evaluated on every send; every random
//! decision is a pure function of `(seed, rule, edge, per-edge sequence
//! number)`, so two runs with the same plan and the same message order
//! make identical fault decisions — chaos soaks are reproducible, and a
//! failure seed can be replayed in a debugger.
//!
//! Faults model the *network's* view of a crash: a killed endpoint simply
//! stops receiving — no deregistration handshake, no goodbye message.
//! Peers discover the death the same way they would on real hardware, by
//! timing out.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// One fault action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Silently discard the message with this probability. The sender
    /// still sees a successful send (the bytes "made it onto the wire").
    Drop {
        /// Probability in `[0, 1]` that a matching message is dropped.
        probability: f64,
    },
    /// Add latency to the message with this probability.
    Delay {
        /// Probability in `[0, 1]` that a matching message is delayed.
        probability: f64,
        /// Extra latency added on top of any modeled transfer time.
        delay: Duration,
    },
    /// Deliver the message twice with this probability (receivers must be
    /// idempotent; the cluster's dedup-by-id merge is exercised by this).
    Duplicate {
        /// Probability in `[0, 1]` that a matching message is duplicated.
        probability: f64,
    },
    /// Kill the destination endpoint once it has received `messages`
    /// deliveries (counted across all senders). The Nth message is the
    /// last one delivered; everything after fails like a crashed host.
    KillAfter {
        /// Deliveries the destination survives before dying.
        messages: u64,
    },
    /// Refuse the first `count` matching sends with a visible transport
    /// error — the sender sees `VqError::Network`, as on a TCP
    /// connection-refused/RST against a *live* host — then let traffic
    /// flow normally. Unlike [`FaultAction::Drop`], which models loss the
    /// sender cannot see, this models the transient connection failures
    /// that historically parked a healthy worker in the dead set forever.
    RefuseNext {
        /// Matching sends to refuse before the edge heals.
        count: u64,
    },
}

/// One rule: an edge pattern plus an action.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Match only messages from this endpoint (`None` = any sender).
    pub from: Option<u32>,
    /// Match only messages to this endpoint (`None` = any destination).
    pub to: Option<u32>,
    /// What to do with matching messages.
    pub action: FaultAction,
}

impl FaultRule {
    fn matches(&self, from: u32, to: u32) -> bool {
        self.from.map_or(true, |f| f == from) && self.to.map_or(true, |t| t == to)
    }
}

/// A seeded, deterministic fault schedule for one transport.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Rules, evaluated in order on every send.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Empty plan with a seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add a drop rule on the `(from, to)` edge pattern.
    pub fn drop_on(mut self, from: Option<u32>, to: Option<u32>, probability: f64) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            action: FaultAction::Drop { probability },
        });
        self
    }

    /// Add a delay rule on the `(from, to)` edge pattern.
    pub fn delay_on(
        mut self,
        from: Option<u32>,
        to: Option<u32>,
        probability: f64,
        delay: Duration,
    ) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            action: FaultAction::Delay { probability, delay },
        });
        self
    }

    /// Add a duplicate rule on the `(from, to)` edge pattern.
    pub fn duplicate_on(mut self, from: Option<u32>, to: Option<u32>, probability: f64) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            action: FaultAction::Duplicate { probability },
        });
        self
    }

    /// Kill endpoint `to` after it has received `messages` deliveries.
    pub fn kill_after(mut self, to: u32, messages: u64) -> Self {
        self.rules.push(FaultRule {
            from: None,
            to: Some(to),
            action: FaultAction::KillAfter { messages },
        });
        self
    }

    /// Refuse the first `count` sends matching the `(from, to)` edge
    /// pattern with a sender-visible `Network` error, then heal.
    pub fn refuse_on(mut self, from: Option<u32>, to: Option<u32>, count: u64) -> Self {
        self.rules.push(FaultRule {
            from,
            to,
            action: FaultAction::RefuseNext { count },
        });
        self
    }
}

/// What the transport should do with one message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SendVerdict {
    /// Deliver the message at all (false = dropped or sent to a corpse).
    pub deliver: bool,
    /// Copies to enqueue when delivering (2 when duplicated).
    pub copies: u32,
    /// Injected latency (on top of any modeled transfer time).
    pub extra_delay: Duration,
    /// Remove the destination's inbox after delivering this message (it
    /// just received its fatal Nth message).
    pub kill_after_delivery: bool,
    /// The destination is already past its kill threshold: fail the send
    /// the way a crashed host would.
    pub dest_dead: bool,
    /// Refuse the send with a visible `Network` error (connection
    /// refused/reset) while leaving the destination alive.
    pub refused: bool,
}

/// Live evaluation state for a [`FaultPlan`].
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Per-(rule, edge) decision counter: the sequence number feeding the
    /// deterministic hash, so each matching message gets a fresh but
    /// reproducible roll.
    seq: Mutex<HashMap<(usize, u32, u32), u64>>,
    /// Messages delivered per destination endpoint (for `KillAfter`).
    delivered: Mutex<HashMap<u32, u64>>,
    /// Endpoints killed by a `KillAfter` rule, until re-registered.
    killed: Mutex<HashSet<u32>>,
    /// Sends refused so far per `RefuseNext` rule (counted across every
    /// matching edge — "the first N frames", not "the first N per peer").
    refused: Mutex<HashMap<usize, u64>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            seq: Mutex::new(HashMap::new()),
            delivered: Mutex::new(HashMap::new()),
            killed: Mutex::new(HashSet::new()),
            refused: Mutex::new(HashMap::new()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Uniform roll in `[0, 1)`, deterministic in (seed, rule, edge, seq).
    fn roll(&self, rule_idx: usize, from: u32, to: u32) -> f64 {
        let n = {
            let mut seq = self.seq.lock();
            let ctr = seq.entry((rule_idx, from, to)).or_insert(0);
            *ctr += 1;
            *ctr
        };
        let mut h = self.plan.seed;
        for v in [rule_idx as u64, from as u64, to as u64, n] {
            h = splitmix64(h ^ v);
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of one message. The caller applies the verdict
    /// (sleeping, dropping, enqueueing copies, yanking the dead inbox).
    pub fn on_send(&self, from: u32, to: u32) -> SendVerdict {
        let mut verdict = SendVerdict {
            deliver: true,
            copies: 1,
            extra_delay: Duration::ZERO,
            kill_after_delivery: false,
            dest_dead: false,
            refused: false,
        };
        if self.killed.lock().contains(&to) {
            verdict.deliver = false;
            verdict.dest_dead = true;
            return verdict;
        }
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if !rule.matches(from, to) {
                continue;
            }
            match rule.action {
                FaultAction::Drop { probability } => {
                    if self.roll(i, from, to) < probability {
                        verdict.deliver = false;
                        return verdict;
                    }
                }
                FaultAction::Delay { probability, delay } => {
                    if self.roll(i, from, to) < probability {
                        verdict.extra_delay += delay;
                    }
                }
                FaultAction::Duplicate { probability } => {
                    if self.roll(i, from, to) < probability {
                        verdict.copies = 2;
                    }
                }
                FaultAction::KillAfter { .. } => {} // handled below, after the count
                FaultAction::RefuseNext { count } => {
                    let mut refused = self.refused.lock();
                    let used = refused.entry(i).or_insert(0);
                    if *used < count {
                        *used += 1;
                        verdict.deliver = false;
                        verdict.refused = true;
                        return verdict;
                    }
                }
            }
        }
        // The message will be delivered: count it against the
        // destination's lifetime and check every KillAfter rule.
        let n = {
            let mut delivered = self.delivered.lock();
            let ctr = delivered.entry(to).or_insert(0);
            *ctr += verdict.copies as u64;
            *ctr
        };
        for rule in &self.plan.rules {
            if let FaultAction::KillAfter { messages } = rule.action {
                if rule.matches(from, to) && n >= messages {
                    self.killed.lock().insert(to);
                    verdict.kill_after_delivery = true;
                    break;
                }
            }
        }
        verdict
    }

    /// Endpoints currently dead from a `KillAfter` rule.
    pub fn killed(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.killed.lock().iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Forget a kill (the endpoint re-registered — a restarted worker
    /// gets a fresh lifetime budget).
    pub fn revive(&self, id: u32) {
        self.killed.lock().remove(&id);
        self.delivered.lock().remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_match_edge_patterns() {
        let any = FaultRule {
            from: None,
            to: None,
            action: FaultAction::Drop { probability: 1.0 },
        };
        assert!(any.matches(3, 7));
        let edge = FaultRule {
            from: Some(1),
            to: Some(2),
            action: FaultAction::Drop { probability: 1.0 },
        };
        assert!(edge.matches(1, 2));
        assert!(!edge.matches(1, 3));
        assert!(!edge.matches(2, 2));
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let plan = FaultPlan::new(0xFA17).drop_on(None, None, 0.5);
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        let seq_a: Vec<bool> = (0..64).map(|_| a.on_send(1, 2).deliver).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.on_send(1, 2).deliver).collect();
        assert_eq!(seq_a, seq_b);
        // A p=0.5 drop should actually drop *some* and deliver *some*.
        assert!(seq_a.iter().any(|&d| d));
        assert!(seq_a.iter().any(|&d| !d));
        // A different seed produces a different schedule.
        let c = FaultState::new(FaultPlan::new(0xDEAD).drop_on(None, None, 0.5));
        let seq_c: Vec<bool> = (0..64).map(|_| c.on_send(1, 2).deliver).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn kill_after_delivers_exactly_n_then_dies() {
        let state = FaultState::new(FaultPlan::new(7).kill_after(9, 3));
        for i in 0..3 {
            let v = state.on_send(1, 9);
            assert!(v.deliver, "message {i} within budget");
            assert_eq!(v.kill_after_delivery, i == 2);
        }
        let v = state.on_send(1, 9);
        assert!(!v.deliver);
        assert!(v.dest_dead);
        assert_eq!(state.killed(), vec![9]);
        // Other destinations are unaffected.
        assert!(state.on_send(1, 8).deliver);
        // Revival (re-registration) resets the budget.
        state.revive(9);
        assert!(state.killed().is_empty());
        assert!(state.on_send(1, 9).deliver);
    }

    #[test]
    fn delay_and_duplicate_compose() {
        let plan = FaultPlan::new(1)
            .delay_on(None, Some(2), 1.0, Duration::from_millis(3))
            .duplicate_on(None, Some(2), 1.0);
        let state = FaultState::new(plan);
        let v = state.on_send(1, 2);
        assert!(v.deliver);
        assert_eq!(v.copies, 2);
        assert_eq!(v.extra_delay, Duration::from_millis(3));
        // Unmatched edge: clean delivery.
        let clean = state.on_send(1, 3);
        assert_eq!(clean.copies, 1);
        assert_eq!(clean.extra_delay, Duration::ZERO);
    }

    #[test]
    fn refuse_next_fails_exactly_n_sends_then_heals() {
        let state = FaultState::new(FaultPlan::new(11).refuse_on(None, Some(4), 2));
        for i in 0..2 {
            let v = state.on_send(1, 4);
            assert!(!v.deliver, "send {i} refused");
            assert!(v.refused, "refusal is sender-visible, not a drop");
            assert!(!v.dest_dead, "the host is alive, only the edge failed");
        }
        // Budget spent across *all* matching edges: a different sender
        // does not get a fresh refusal quota.
        assert!(state.on_send(2, 4).deliver);
        assert!(state.on_send(1, 4).deliver);
        // Non-matching destination was never affected.
        assert!(state.on_send(1, 5).deliver);
    }

    #[test]
    fn drop_probability_zero_and_one_are_exact() {
        let never = FaultState::new(FaultPlan::new(3).drop_on(None, None, 0.0));
        assert!((0..32).all(|_| never.on_send(1, 2).deliver));
        let always = FaultState::new(FaultPlan::new(3).drop_on(None, None, 1.0));
        assert!((0..32).all(|_| !always.on_send(1, 2).deliver));
    }
}
