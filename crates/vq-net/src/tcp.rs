//! Real-socket transport: the same [`Transport`] contract as the
//! in-process [`Switchboard`](crate::transport::Switchboard), but every
//! message crosses a `std::net::TcpStream` as a CRC-framed
//! [`wire`](crate::wire) payload.
//!
//! Topology: each registered endpoint binds its own loopback listener; an
//! in-process registry maps endpoint id → socket address (the analog of a
//! cluster membership service — frames are real network bytes, discovery
//! is not yet distributed). Senders keep one writer thread per peer, so a
//! slow or dead peer never blocks sends to healthy ones, and writes to a
//! given peer stay FIFO. A broken pipe triggers exactly one reconnect
//! attempt against the *current* registered address, which is how a
//! restarted worker (same id, new listener) is picked up transparently.
//!
//! Fault injection ([`FaultPlan`]) and the latency/bandwidth
//! [`NetworkModel`] are applied on the send path before any bytes move,
//! by the same rules as the in-proc transport — the chaos soak runs
//! against both and must not be able to tell them apart.

use crate::cost::NetworkModel;
use crate::fault::{FaultPlan, FaultState};
use crate::transport::{Envelope, Transport, TransportEndpoint, TransportStats};
use crate::wire;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;
use vq_core::{VqError, VqResult};

/// How long a fatal (`KillAfter`) delivery waits for its flush
/// acknowledgement before crashing the destination anyway.
const FLUSH_ACK_TIMEOUT: Duration = Duration::from_secs(1);

/// Message bounds for moving `M` over a socket.
pub trait WireMsg: Clone + Send + Serialize + DeserializeOwned + 'static {}
impl<M: Clone + Send + Serialize + DeserializeOwned + 'static> WireMsg for M {}

/// Controls the accept loop and reader threads of one listener.
struct ListenerCtl {
    addr: SocketAddr,
    closing: AtomicBool,
    /// Clones of accepted streams, kept so teardown can shut readers down
    /// mid-`read` (dropping a `TcpStream` elsewhere does not wake a
    /// blocked reader).
    accepted: Mutex<Vec<TcpStream>>,
}

impl ListenerCtl {
    /// Stop the accept loop and sever every accepted connection.
    fn close(&self) {
        self.closing.store(true, Relaxed);
        for stream in self.accepted.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake the acceptor so it observes `closing`.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Live endpoint bookkeeping in the registry.
struct Registration {
    addr: SocketAddr,
    ctl: Arc<ListenerCtl>,
}

struct Shared {
    registry: RwLock<HashMap<u32, Registration>>,
    /// Node id of each endpoint (for the cost model; survives crashes,
    /// like the switchboard's placement map).
    placement: RwLock<HashMap<u32, u32>>,
    model: Option<NetworkModel>,
    faults: RwLock<Option<Arc<FaultState>>>,
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    fabric_bytes: AtomicU64,
}

/// TCP-backed [`Transport`]. Clone freely; clones share the registry.
pub struct TcpTransport {
    shared: Arc<Shared>,
}

impl Clone for TcpTransport {
    fn clone(&self) -> Self {
        TcpTransport {
            shared: self.shared.clone(),
        }
    }
}

impl TcpTransport {
    /// Transport with no artificial delays.
    pub fn new() -> Self {
        Self::with_options(None)
    }

    /// Transport that additionally sleeps the modeled transfer time per
    /// send (on top of whatever the real loopback stack costs).
    pub fn with_model(model: NetworkModel) -> Self {
        Self::with_options(Some(model))
    }

    fn with_options(model: Option<NetworkModel>) -> Self {
        TcpTransport {
            shared: Arc::new(Shared {
                registry: RwLock::new(HashMap::new()),
                placement: RwLock::new(HashMap::new()),
                model,
                faults: RwLock::new(None),
                messages_sent: AtomicU64::new(0),
                bytes_sent: AtomicU64::new(0),
                fabric_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Register endpoint `id` on `node`: binds a fresh loopback listener
    /// and starts accepting frames into the returned endpoint's inbox.
    pub fn register<M: WireMsg>(&self, id: u32, node: u32) -> TcpEndpoint<M> {
        // A replacement endpoint (worker restart) tears the old listener
        // down first so stray frames cannot land in a stale inbox.
        if let Some(old) = self.shared.registry.write().remove(&id) {
            old.ctl.close();
        }
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener addr");
        let ctl = Arc::new(ListenerCtl {
            addr,
            closing: AtomicBool::new(false),
            accepted: Mutex::new(Vec::new()),
        });
        let (tx, rx) = unbounded::<Envelope<M>>();
        {
            let ctl = ctl.clone();
            std::thread::Builder::new()
                .name(format!("vq-tcp-accept-{id}"))
                .spawn(move || accept_loop(listener, ctl, tx))
                .expect("spawn acceptor");
        }
        self.shared
            .registry
            .write()
            .insert(id, Registration { addr, ctl });
        self.shared.placement.write().insert(id, node);
        if let Some(faults) = self.shared.faults.read().as_ref() {
            faults.revive(id);
        }
        TcpEndpoint {
            id,
            rx,
            shared: self.shared.clone(),
            links: Mutex::new(HashMap::new()),
        }
    }

    /// Remove an endpoint; future sends to it fail.
    pub fn deregister(&self, id: u32) {
        if let Some(reg) = self.shared.registry.write().remove(&id) {
            reg.ctl.close();
        }
        self.shared.placement.write().remove(&id);
    }

    /// Crash endpoint `id`: listener and connections are severed without
    /// a handshake. Messages already in its inbox drain; then `recv`
    /// reports the transport gone, and senders fail like against a dead
    /// host. Placement survives for cost modeling, as in-proc.
    pub fn crash(&self, id: u32) {
        if let Some(reg) = self.shared.registry.write().remove(&id) {
            reg.ctl.close();
        }
    }

    /// Install (or replace) a fault plan; subsequent sends evaluate it.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.shared.faults.write() = Some(Arc::new(FaultState::new(plan)));
    }

    /// Remove the fault plan; the network runs clean again.
    pub fn clear_faults(&self) {
        *self.shared.faults.write() = None;
    }

    /// Endpoints currently dead from a `KillAfter` fault, ascending.
    pub fn fault_killed(&self) -> Vec<u32> {
        self.shared
            .faults
            .read()
            .as_ref()
            .map(|f| f.killed())
            .unwrap_or_default()
    }

    /// Aggregate traffic counters since creation. `bytes` counts the
    /// caller-declared payload sizes (same convention as in-proc, so the
    /// two transports' dashboards are comparable), not frame overhead.
    pub fn stats(&self) -> TransportStats {
        TransportStats {
            messages: self.shared.messages_sent.load(Relaxed),
            bytes: self.shared.bytes_sent.load(Relaxed),
            fabric_bytes: self.shared.fabric_bytes.load(Relaxed),
        }
    }

    /// Ids of all registered endpoints, ascending.
    pub fn endpoints(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.shared.registry.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

/// Accept connections for one endpoint and pump their frames inbox-ward.
fn accept_loop<M: WireMsg>(listener: TcpListener, ctl: Arc<ListenerCtl>, tx: Sender<Envelope<M>>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if ctl.closing.load(Relaxed) {
                    return;
                }
                continue;
            }
        };
        if ctl.closing.load(Relaxed) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            ctl.accepted.lock().push(clone);
        }
        let tx = tx.clone();
        let ctl = ctl.clone();
        std::thread::Builder::new()
            .name("vq-tcp-read".into())
            .spawn(move || read_loop(stream, ctl, tx))
            .expect("spawn reader");
    }
}

/// Decode frames off one connection until EOF, error, or teardown.
fn read_loop<M: WireMsg>(mut stream: TcpStream, ctl: Arc<ListenerCtl>, tx: Sender<Envelope<M>>) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some(payload)) => match wire::from_bytes::<(u32, u32, M)>(&payload) {
                Ok((from, to, msg)) => {
                    if tx
                        .send(Envelope {
                            from,
                            to,
                            payload: msg,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err(_) => {
                    // Framing held but the payload is not one of ours:
                    // protocol confusion. Drop the connection.
                    vq_obs::count("net.frame_rejects", 1);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            },
            Ok(None) => return, // clean EOF
            Err(_) => {
                // Torn frame, bad magic, CRC mismatch, version skew — or
                // our own teardown severing the socket mid-read. Only the
                // former are protocol rejects.
                if !ctl.closing.load(Relaxed) {
                    vq_obs::count("net.frame_rejects", 1);
                }
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// One frame handed to a peer's writer thread.
struct WriteJob {
    frame: Vec<u8>,
    /// For fatal (`KillAfter`) deliveries: the sender blocks on this until
    /// the frame has hit the socket, so the kill cannot outrun the
    /// message it rides on.
    ack: Option<Sender<bool>>,
}

/// Per-peer writer handle.
struct PeerLink {
    tx: Sender<WriteJob>,
    dead: Arc<AtomicBool>,
}

/// Writer thread: owns the connection to one peer, connecting lazily and
/// reconnecting once per job on a broken pipe.
fn write_loop(shared: Arc<Shared>, peer: u32, jobs: Receiver<WriteJob>, dead: Arc<AtomicBool>) {
    let mut stream: Option<(SocketAddr, TcpStream)> = None;
    while let Ok(job) = jobs.recv() {
        let mut ok = false;
        for _attempt in 0..2 {
            let addr = shared.registry.read().get(&peer).map(|r| r.addr);
            let Some(addr) = addr else {
                // No route; re-resolving within this job won't help.
                break;
            };
            // A changed address means the peer restarted with a fresh
            // listener: writing into the stale socket could silently
            // buffer into a dead connection, so reconnect eagerly.
            if stream.as_ref().is_some_and(|(a, _)| *a != addr) {
                stream = None;
            }
            if stream.is_none() {
                stream = TcpStream::connect(addr).ok().map(|s| (addr, s));
            }
            if let Some((_, s)) = stream.as_mut() {
                if wire::write_frame(s, &job.frame).is_ok() {
                    ok = true;
                    break;
                }
                // Broken pipe: drop the connection and retry once against
                // the currently-registered address.
                stream = None;
            }
        }
        if let Some(ack) = job.ack {
            let _ = ack.send(ok);
        }
        if !ok {
            dead.store(true, Relaxed);
            return;
        }
    }
}

/// Endpoint of a [`TcpTransport`]: sends encode through the wire codec
/// into per-peer writer threads; receives drain the frames the acceptor's
/// readers decoded.
pub struct TcpEndpoint<M> {
    id: u32,
    rx: Receiver<Envelope<M>>,
    shared: Arc<Shared>,
    links: Mutex<HashMap<u32, PeerLink>>,
}

impl<M: WireMsg> TcpEndpoint<M> {
    /// This endpoint's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Enqueue one encoded frame for `to`, standing up or replacing the
    /// writer thread as needed. Returns the flush-ack receiver if one was
    /// requested.
    fn enqueue(&self, to: u32, frame: Vec<u8>, want_ack: bool) -> VqResult<Option<Receiver<bool>>> {
        let mut links = self.links.lock();
        if links.get(&to).is_some_and(|l| l.dead.load(Relaxed)) {
            links.remove(&to);
        }
        let link = links.entry(to).or_insert_with(|| {
            let (tx, rx) = unbounded();
            let dead = Arc::new(AtomicBool::new(false));
            let shared = self.shared.clone();
            let flag = dead.clone();
            std::thread::Builder::new()
                .name(format!("vq-tcp-write-{}-{to}", self.id))
                .spawn(move || write_loop(shared, to, rx, flag))
                .expect("spawn writer");
            PeerLink { tx, dead }
        });
        let (ack_tx, ack_rx) = if want_ack {
            let (tx, rx) = crossbeam::channel::bounded(1);
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        link.tx
            .send(WriteJob {
                frame,
                ack: ack_tx,
            })
            .map_err(|_| VqError::Network(format!("endpoint {to} unreachable")))?;
        Ok(ack_rx)
    }

    /// Send `payload` to endpoint `to` (zero-sized for the cost model).
    pub fn send(&self, to: u32, payload: M) -> VqResult<()> {
        self.send_sized(to, payload, 0)
    }

    /// Send `payload`, declaring its wire size for the cost model. Fault
    /// and model semantics match the in-proc transport exactly; see
    /// [`Endpoint::send_sized`](crate::transport::Endpoint::send_sized).
    pub fn send_sized(&self, to: u32, payload: M, bytes: u64) -> VqResult<()> {
        let (src, dst) = {
            let placement = self.shared.placement.read();
            (
                placement.get(&self.id).copied(),
                placement.get(&to).copied(),
            )
        };
        self.shared.messages_sent.fetch_add(1, Relaxed);
        self.shared.bytes_sent.fetch_add(bytes, Relaxed);
        if let (Some(a), Some(b)) = (src, dst) {
            if a != b {
                self.shared.fabric_bytes.fetch_add(bytes, Relaxed);
            }
        }
        if let Some(model) = &self.shared.model {
            if let (Some(a), Some(b)) = (src, dst) {
                let secs = model.transfer_secs(a, b, bytes);
                if secs > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(secs));
                }
            }
        }
        let faults = self.shared.faults.read().clone();
        let verdict = faults.as_ref().map(|f| f.on_send(self.id, to));
        if let Some(v) = &verdict {
            if v.extra_delay > Duration::ZERO {
                std::thread::sleep(v.extra_delay);
            }
            if !v.deliver {
                if v.dest_dead {
                    if let Some(reg) = self.shared.registry.write().remove(&to) {
                        reg.ctl.close();
                    }
                    return Err(VqError::Network(format!("endpoint {to} crashed")));
                }
                if v.refused {
                    // Connection refused/reset: sender-visible failure,
                    // destination stays registered and serving.
                    return Err(VqError::Network(format!(
                        "connection to endpoint {to} refused"
                    )));
                }
                return Ok(());
            }
        }
        if !self.shared.registry.read().contains_key(&to) {
            return Err(VqError::Network(format!("endpoint {to} not registered")));
        }
        let frame = wire::to_bytes(&(self.id, to, payload))?;
        let copies = verdict.as_ref().map_or(1, |v| v.copies);
        for _ in 1..copies {
            let _ = self.enqueue(to, frame.clone(), false);
        }
        let kill = verdict.as_ref().is_some_and(|v| v.kill_after_delivery);
        let ack = self.enqueue(to, frame, kill)?;
        if kill {
            // Wait for the fatal frame to hit the socket, then crash the
            // destination — the message must be readable from its inbox,
            // exactly like the in-proc kill-after semantics.
            if let Some(ack) = ack {
                let _ = ack.recv_timeout(FLUSH_ACK_TIMEOUT);
            }
            // Give the destination's reader a moment to drain the frame
            // off the socket into the inbox before the teardown severs it.
            std::thread::sleep(Duration::from_millis(20));
            if let Some(reg) = self.shared.registry.write().remove(&to) {
                reg.ctl.close();
            }
        }
        Ok(())
    }

    /// Block for the next message.
    pub fn recv(&self) -> VqResult<Envelope<M>> {
        self.rx
            .recv()
            .map_err(|_| VqError::Network("transport shut down".into()))
    }

    /// Block for the next message up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> VqResult<Envelope<M>> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => VqError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => {
                VqError::Network("transport shut down".into())
            }
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }
}

impl<M: WireMsg> TransportEndpoint<M> for TcpEndpoint<M> {
    fn id(&self) -> u32 {
        TcpEndpoint::id(self)
    }

    fn send(&self, to: u32, payload: M) -> VqResult<()> {
        TcpEndpoint::send(self, to, payload)
    }

    fn send_sized(&self, to: u32, payload: M, bytes: u64) -> VqResult<()> {
        TcpEndpoint::send_sized(self, to, payload, bytes)
    }

    fn recv(&self) -> VqResult<Envelope<M>> {
        TcpEndpoint::recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> VqResult<Envelope<M>> {
        TcpEndpoint::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        TcpEndpoint::try_recv(self)
    }
}

impl<M: WireMsg> Transport<M> for TcpTransport {
    type Endpoint = TcpEndpoint<M>;

    fn register(&self, id: u32, node: u32) -> TcpEndpoint<M> {
        TcpTransport::register(self, id, node)
    }

    fn deregister(&self, id: u32) {
        TcpTransport::deregister(self, id)
    }

    fn crash(&self, id: u32) {
        TcpTransport::crash(self, id)
    }

    fn install_faults(&self, plan: FaultPlan) {
        TcpTransport::install_faults(self, plan)
    }

    fn clear_faults(&self) {
        TcpTransport::clear_faults(self)
    }

    fn fault_killed(&self) -> Vec<u32> {
        TcpTransport::fault_killed(self)
    }

    fn stats(&self) -> TransportStats {
        TcpTransport::stats(self)
    }

    fn endpoints(&self) -> Vec<u32> {
        TcpTransport::endpoints(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Poll `cond` for up to ~2 s; real sockets make delivery asynchronous
    /// where the in-proc transport was instantaneous.
    fn eventually(mut cond: impl FnMut() -> bool) -> bool {
        for _ in 0..200 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn point_to_point_over_loopback() {
        let net = TcpTransport::new();
        let a = net.register::<String>(1, 0);
        let b = net.register::<String>(2, 0);
        a.send(2, "hello".into()).unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from, 1);
        assert_eq!(env.to, 2);
        assert_eq!(env.payload, "hello");
        // Reply over the reverse direction (fresh connection).
        b.send(1, "world".into()).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().payload, "world");
    }

    #[test]
    fn send_to_unknown_endpoint_fails() {
        let net = TcpTransport::new();
        let a = net.register::<u32>(1, 0);
        assert!(matches!(a.send(99, 0), Err(VqError::Network(_))));
    }

    #[test]
    fn fifo_order_per_pair_across_sockets() {
        let net = TcpTransport::new();
        let a = net.register::<u32>(1, 0);
        let b = net.register::<u32>(2, 0);
        for i in 0..200 {
            a.send(2, i).unwrap();
        }
        for i in 0..200 {
            assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().payload, i);
        }
    }

    #[test]
    fn crash_drains_then_errors() {
        let net = TcpTransport::new();
        let a = net.register::<u32>(1, 0);
        let b = net.register::<u32>(2, 0);
        a.send(2, 7).unwrap();
        // Let the frame land in the inbox before the crash severs it.
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.payload, 7);
        net.crash(2);
        assert!(b.recv_timeout(Duration::from_secs(5)).is_err());
        assert!(eventually(|| a.send(2, 8).is_err()));
        assert_eq!(net.endpoints(), vec![1]);
    }

    #[test]
    fn restarted_endpoint_is_reachable_again() {
        let net = TcpTransport::new();
        let a = net.register::<u32>(1, 0);
        let b = net.register::<u32>(2, 0);
        a.send(2, 1).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().payload, 1);
        net.crash(2);
        assert!(eventually(|| a.send(2, 2).is_err()));
        // Same id comes back with a fresh listener on a new port; the
        // writer link reconnects against the new address.
        let b2 = net.register::<u32>(2, 0);
        assert!(eventually(|| a.send(2, 3).is_ok()));
        let env = b2.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.payload, 3);
    }

    #[test]
    fn faults_apply_identically_to_tcp() {
        let net = TcpTransport::new();
        net.install_faults(FaultPlan::new(5).drop_on(Some(1), Some(2), 1.0));
        let a = net.register::<u32>(1, 0);
        let b = net.register::<u32>(2, 0);
        a.send(2, 7).unwrap(); // dropped on the wire, sender sees success
        b.send(1, 9).unwrap(); // reverse edge is clean
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().payload, 9);
        assert!(b.try_recv().is_none());
        net.clear_faults();
        a.send(2, 8).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().payload, 8);
    }

    #[test]
    fn fault_kill_after_crashes_destination_with_message_delivered() {
        let net = TcpTransport::new();
        net.install_faults(FaultPlan::new(5).kill_after(2, 2));
        let a = net.register::<u32>(1, 0);
        let b = net.register::<u32>(2, 0);
        a.send(2, 1).unwrap();
        a.send(2, 2).unwrap(); // fatal delivery
        assert_eq!(net.fault_killed(), vec![2]);
        // Queued messages drain, then the transport is gone.
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().payload, 1);
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().payload, 2);
        assert!(b.recv_timeout(Duration::from_secs(5)).is_err());
        assert!(eventually(|| a.send(2, 3).is_err()));
        // Re-registering revives the id with a fresh budget.
        let b2 = net.register::<u32>(2, 0);
        assert!(net.fault_killed().is_empty());
        assert!(eventually(|| a.send(2, 4).is_ok()));
        assert_eq!(b2.recv_timeout(Duration::from_secs(5)).unwrap().payload, 4);
    }

    #[test]
    fn structured_payloads_cross_the_socket() {
        #[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Blob {
            id: u64,
            vector: Vec<f32>,
            tag: Option<String>,
        }
        let net = TcpTransport::new();
        let a = net.register::<Blob>(1, 0);
        let b = net.register::<Blob>(2, 0);
        let blob = Blob {
            id: 42,
            vector: (0..256).map(|i| i as f32 * 0.5).collect(),
            tag: Some("shard-3".into()),
        };
        a.send_sized(2, blob.clone(), 1024).unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.payload, blob);
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 1024);
    }

    #[test]
    fn garbage_on_the_binary_port_is_rejected() {
        let net = TcpTransport::new();
        let b = net.register::<u32>(2, 0);
        let addr = net.shared.registry.read().get(&2).unwrap().addr;
        // An HTTP request is the classic cross-protocol accident.
        let mut s = TcpStream::connect(addr).unwrap();
        use std::io::Write as _;
        s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        // The reader must reject the garbage and drop the connection
        // without delivering anything or wedging the endpoint.
        assert!(matches!(
            b.recv_timeout(Duration::from_millis(200)),
            Err(VqError::Timeout)
        ));
        // The endpoint still works for well-formed traffic.
        let a = net.register::<u32>(1, 0);
        a.send(2, 5).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().payload, 5);
    }
}
