//! Property-based tests for storage: WAL codec totality, replay-equals-
//! live-state, id-tracker-vs-model, arena-vs-Vec.

use proptest::prelude::*;
use vq_core::{Payload, PayloadValue, Point, PointId};
use vq_storage::{PagedArena, SegmentStore, Wal, WalRecord};

fn arb_payload_value() -> impl Strategy<Value = PayloadValue> {
    prop_oneof![
        ".{0,12}".prop_map(PayloadValue::Str),
        any::<i64>().prop_map(PayloadValue::Int),
        (-1e9f64..1e9).prop_map(PayloadValue::Float),
        any::<bool>().prop_map(PayloadValue::Bool),
        prop::collection::vec("[a-z]{0,6}", 0..4).prop_map(PayloadValue::Keywords),
    ]
}

fn arb_point(dim: usize) -> impl Strategy<Value = Point> {
    (
        0u64..50,
        prop::collection::vec(-100.0f32..100.0, dim),
        prop::collection::btree_map("[a-e]{1,3}", arb_payload_value(), 0..4),
    )
        .prop_map(|(id, vector, kv)| Point::with_payload(id, vector, Payload(kv)))
}

/// A random mutation against a segment store.
#[derive(Debug, Clone)]
enum Op {
    Upsert(Point),
    Delete(PointId),
}

fn arb_op(dim: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_point(dim).prop_map(Op::Upsert),
        1 => (0u64..50).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wal_record_codec_total(p in arb_point(7)) {
        for rec in [
            WalRecord::Upsert(p.clone()),
            WalRecord::Delete(p.id),
            WalRecord::SealSegment { segment_seq: p.id },
            WalRecord::IndexBuilt { segment_seq: p.id },
        ] {
            let enc = rec.encode();
            prop_assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn wal_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary payloads must either decode or error — never panic.
        let _ = WalRecord::decode(&bytes);
    }

    #[test]
    fn replay_equals_live_state(ops in prop::collection::vec(arb_op(5), 0..60)) {
        let mut wal = Wal::in_memory();
        let mut live = SegmentStore::new(5);
        for op in &ops {
            let rec = match op {
                Op::Upsert(p) => WalRecord::Upsert(p.clone()),
                Op::Delete(id) => WalRecord::Delete(*id),
            };
            // Apply to live state first; journal only successful ops
            // (deletes of absent ids fail and must not be replayed).
            if live.apply(rec.clone()).is_ok() {
                wal.append(&rec).unwrap();
            }
        }
        let mut recovered = SegmentStore::new(5);
        for rec in wal.replay().unwrap() {
            recovered.apply(rec).unwrap();
        }
        prop_assert_eq!(recovered.live_count(), live.live_count());
        prop_assert_eq!(recovered.total_offsets(), live.total_offsets());
        for id in 0..50u64 {
            prop_assert_eq!(recovered.get(id), live.get(id), "id {}", id);
        }
    }

    #[test]
    fn snapshot_restore_equals_source(ops in prop::collection::vec(arb_op(4), 0..60)) {
        let mut live = SegmentStore::new(4);
        for op in ops {
            let _ = match op {
                Op::Upsert(p) => live.upsert(p),
                Op::Delete(id) => live.delete(id),
            };
        }
        let restored = SegmentStore::restore(&live.snapshot()).unwrap();
        prop_assert_eq!(restored.live_count(), live.live_count());
        for id in 0..50u64 {
            prop_assert_eq!(restored.get(id), live.get(id), "id {}", id);
        }
    }

    #[test]
    fn id_tracker_matches_hashmap_model(ops in prop::collection::vec(arb_op(1), 0..80)) {
        use std::collections::HashMap;
        let mut store = SegmentStore::new(1);
        let mut model: HashMap<PointId, Vec<f32>> = HashMap::new();
        for op in ops {
            match op {
                Op::Upsert(p) => {
                    let id = p.id;
                    let v = p.vector.clone();
                    if store.upsert(p).is_ok() {
                        model.insert(id, v);
                    }
                }
                Op::Delete(id) => {
                    let ours = store.delete(id);
                    let theirs = model.remove(&id);
                    prop_assert_eq!(ours.is_ok(), theirs.is_some(), "delete {}", id);
                }
            }
        }
        prop_assert_eq!(store.live_count(), model.len());
        for (id, v) in &model {
            prop_assert_eq!(&store.get(*id).unwrap().vector, v);
        }
    }

    #[test]
    fn arena_matches_vec_model(
        vectors in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 3), 0..50),
        page in 1usize..8
    ) {
        let mut arena = PagedArena::with_page_vectors(3, page);
        for v in &vectors {
            arena.push(v).unwrap();
        }
        prop_assert_eq!(arena.len(), vectors.len());
        for (i, v) in vectors.iter().enumerate() {
            prop_assert_eq!(arena.get(i as u32), v.as_slice());
        }
        // Flat roundtrip preserves everything.
        let rebuilt = PagedArena::from_flat(3, &arena.to_flat()).unwrap();
        for i in 0..vectors.len() as u32 {
            prop_assert_eq!(rebuilt.get(i), arena.get(i));
        }
    }

    #[test]
    fn flat_search_over_pages_equals_dense(
        vectors in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 5), 1..60),
        query in prop::collection::vec(-10.0f32..10.0, 5),
        page in 1usize..9,
        k in 1usize..12
    ) {
        // End-to-end check of the blocked scoring path: a flat scan over
        // a PagedArena (blocks end at page boundaries, the last one
        // usually partial) must return exactly what a scan over the same
        // data in one dense slab returns. Exercises
        // `contiguous_block` stitching across arbitrary page sizes.
        use vq_index::{source::DenseVectors, FlatIndex, VectorSource};
        let mut arena = PagedArena::with_page_vectors(5, page);
        let mut dense = DenseVectors::new(5);
        for v in &vectors {
            arena.push(v).unwrap();
            dense.push(v);
        }
        prop_assert_eq!(arena.len(), dense.len());
        for metric in [
            vq_core::Distance::Dot,
            vq_core::Distance::Euclid,
            vq_core::Distance::Manhattan,
        ] {
            let idx = FlatIndex::new(metric);
            let got = idx.search(&arena, &query, k, None);
            let want = idx.search(&dense, &query, k, None);
            prop_assert_eq!(got, want, "metric {} page {}", metric, page);
        }
    }

    #[test]
    fn wal_survives_torn_tails(
        points in prop::collection::vec(arb_point(3), 1..10),
        cut in 1usize..64
    ) {
        // Re-create the framing independently (this doubles as a check
        // of the on-disk format), truncate mid-frame, and replay: the
        // result must be a prefix of the appended records — never an
        // error or a phantom record.
        use vq_storage::wal::{MemBackend, WalBackend};
        let records: Vec<WalRecord> = points.into_iter().map(WalRecord::Upsert).collect();
        let mut full = Vec::new();
        for r in &records {
            let payload = r.encode();
            full.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            full.extend_from_slice(&vq_storage::crc::crc32(&payload).to_le_bytes());
            full.extend_from_slice(&payload);
        }
        let cut_at = full.len().saturating_sub(cut % full.len().max(1));
        let mut torn = MemBackend::new();
        torn.append(&full[..cut_at]).unwrap();
        let replayed = Wal::with_backend(Box::new(torn)).replay().unwrap();
        prop_assert!(replayed.len() <= records.len());
        for (got, want) in replayed.iter().zip(&records) {
            prop_assert_eq!(got, want);
        }
    }
}
