//! Inverted payload index: `(key, value) → offsets`.
//!
//! The structure behind *prefiltered* (predicated) search — the paper's
//! §2.1 footnote: "In the case of queries that filter based on a
//! condition, some vector databases perform prefiltering to reduce the
//! shard search space." With this index a filter's candidate set is
//! computed exactly, and when it is small the segment scores just those
//! candidates instead of walking the HNSW graph and discarding most of
//! what it visits.
//!
//! Exact-match values are indexed (strings, ints, bools, and each
//! keyword of a keyword list). Floats are deliberately not indexed —
//! equality on floats is a degenerate predicate — so filters touching
//! them fall back to post-filtering.

use std::collections::HashMap;
use vq_core::{Filter, Payload, PayloadValue};

/// Hashable form of an indexable payload value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IndexedValue {
    Str(String),
    Int(i64),
    Bool(bool),
}

impl IndexedValue {
    fn from_probe(v: &PayloadValue) -> Option<IndexedValue> {
        match v {
            PayloadValue::Str(s) => Some(IndexedValue::Str(s.clone())),
            PayloadValue::Int(i) => Some(IndexedValue::Int(*i)),
            PayloadValue::Bool(b) => Some(IndexedValue::Bool(*b)),
            PayloadValue::Float(_) | PayloadValue::Keywords(_) => None,
        }
    }
}

/// The inverted index of one segment's payload column.
#[derive(Debug, Default)]
pub struct PayloadIndex {
    map: HashMap<(String, IndexedValue), Vec<u32>>,
}

impl PayloadIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index `payload` at `offset` (offsets must arrive in ascending
    /// order, which the append-only store guarantees — posting lists stay
    /// sorted for free).
    pub fn insert(&mut self, offset: u32, payload: &Payload) {
        for (key, value) in &payload.0 {
            match value {
                PayloadValue::Str(s) => {
                    self.push(key, IndexedValue::Str(s.clone()), offset);
                }
                PayloadValue::Int(i) => {
                    self.push(key, IndexedValue::Int(*i), offset);
                }
                PayloadValue::Bool(b) => {
                    self.push(key, IndexedValue::Bool(*b), offset);
                }
                PayloadValue::Keywords(ks) => {
                    // A keyword list matches a string probe by
                    // containment; index every keyword.
                    for k in ks {
                        self.push(key, IndexedValue::Str(k.clone()), offset);
                    }
                }
                PayloadValue::Float(_) => {}
            }
        }
    }

    fn push(&mut self, key: &str, value: IndexedValue, offset: u32) {
        self.map
            .entry((key.to_owned(), value))
            .or_default()
            .push(offset);
    }

    /// Posting list for one condition, if indexable.
    fn postings(&self, key: &str, probe: &PayloadValue) -> Option<&[u32]> {
        let iv = IndexedValue::from_probe(probe)?;
        Some(
            self.map
                .get(&(key.to_owned(), iv))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        )
    }

    /// Exact candidate offsets for a conjunctive filter, or `None` when
    /// any condition is not indexable (float probes) — the caller then
    /// post-filters. An empty filter yields `None` too (everything
    /// matches; prefiltering is pointless).
    pub fn candidates(&self, filter: &Filter) -> Option<Vec<u32>> {
        if filter.is_empty() {
            return None;
        }
        let mut lists: Vec<&[u32]> = Vec::with_capacity(filter.must.len());
        for (key, probe) in &filter.must {
            lists.push(self.postings(key, probe)?);
        }
        // Intersect starting from the rarest list.
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<u32> = lists[0].to_vec();
        for list in &lists[1..] {
            if result.is_empty() {
                break;
            }
            result.retain(|o| list.binary_search(o).is_ok());
        }
        Some(result)
    }

    /// Upper bound on a filter's match count (size of the rarest
    /// indexable condition), or `None` if nothing is indexable.
    pub fn estimate(&self, filter: &Filter) -> Option<usize> {
        filter
            .must
            .iter()
            .filter_map(|(k, p)| self.postings(k, p).map(<[u32]>::len))
            .min()
    }

    /// Number of distinct `(key, value)` terms indexed.
    pub fn term_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(kind: &str, year: i64) -> Payload {
        let mut p = Payload::from_pairs([("kind", kind)]);
        p.insert("year", year);
        p
    }

    #[test]
    fn single_condition_postings() {
        let mut idx = PayloadIndex::new();
        idx.insert(0, &payload("virus", 2020));
        idx.insert(1, &payload("host", 2020));
        idx.insert(2, &payload("virus", 2021));
        let f = Filter::must_match("kind", "virus");
        assert_eq!(idx.candidates(&f), Some(vec![0, 2]));
        assert_eq!(idx.estimate(&f), Some(2));
    }

    #[test]
    fn conjunction_intersects() {
        let mut idx = PayloadIndex::new();
        idx.insert(0, &payload("virus", 2020));
        idx.insert(1, &payload("virus", 2021));
        idx.insert(2, &payload("host", 2021));
        let f = Filter::must_match("kind", "virus").and("year", 2021i64);
        assert_eq!(idx.candidates(&f), Some(vec![1]));
        let f = Filter::must_match("kind", "host").and("year", 2020i64);
        assert_eq!(idx.candidates(&f), Some(vec![]));
    }

    #[test]
    fn keywords_indexed_individually() {
        let mut idx = PayloadIndex::new();
        let mut p = Payload::new();
        p.insert(
            "tags",
            PayloadValue::Keywords(vec!["genome".into(), "crispr".into()]),
        );
        idx.insert(5, &p);
        assert_eq!(
            idx.candidates(&Filter::must_match("tags", "crispr")),
            Some(vec![5])
        );
        assert_eq!(
            idx.candidates(&Filter::must_match("tags", "plasmid")),
            Some(vec![])
        );
    }

    #[test]
    fn float_probe_falls_back() {
        let mut idx = PayloadIndex::new();
        let mut p = Payload::new();
        p.insert("score", 0.5f64);
        idx.insert(0, &p);
        let f = Filter::must_match("score", 0.5f64);
        assert_eq!(idx.candidates(&f), None);
        assert_eq!(idx.estimate(&f), None);
    }

    #[test]
    fn empty_filter_is_not_prefilterable() {
        let idx = PayloadIndex::new();
        assert_eq!(idx.candidates(&Filter::default()), None);
    }

    #[test]
    fn missing_term_yields_empty_not_none() {
        let mut idx = PayloadIndex::new();
        idx.insert(0, &payload("virus", 2020));
        let f = Filter::must_match("nonexistent", "x");
        assert_eq!(idx.candidates(&f), Some(vec![]));
    }

    #[test]
    fn postings_stay_sorted() {
        let mut idx = PayloadIndex::new();
        for o in 0..100u32 {
            idx.insert(o, &payload(if o % 2 == 0 { "a" } else { "b" }, 2020));
        }
        let c = idx.candidates(&Filter::must_match("kind", "a")).unwrap();
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(c.len(), 50);
        assert!(idx.term_count() >= 3);
    }
}
