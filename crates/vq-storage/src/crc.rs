//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used by WAL record framing to detect torn or corrupted records on
//! replay. Implemented locally (≈30 lines) rather than pulling in a crate:
//! the polynomial is fixed and the throughput requirement is modest (WAL
//! records, not bulk data).

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Streaming CRC-32 state, for multi-slice records.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finish and produce the checksum.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut s = Crc32::new();
        s.update(&data[..10]);
        s.update(&data[10..]);
        assert_eq!(s.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world".to_vec();
        let before = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), before);
    }
}
