//! Write-ahead log.
//!
//! Every mutation to a shard (upsert, delete, index-policy change) is
//! framed into the WAL before being applied, so a worker restart replays
//! to the exact pre-crash state. Records are length-prefixed and
//! CRC-checked; replay stops cleanly at the first torn record (the normal
//! crash shape for an append-only log).
//!
//! Frame layout (little-endian):
//!
//! ```text
//! +--------+--------+----------------+
//! | len u32| crc u32| payload (len B)|
//! +--------+--------+----------------+
//! ```
//!
//! Payloads are serialized with a compact hand-rolled binary codec rather
//! than JSON: vectors dominate record size and must not be printed as
//! decimal text.

use crate::crc::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use vq_core::{Payload, PayloadValue, Point, PointBlock, PointId, VqError, VqResult};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Insert-or-replace a point.
    Upsert(Point),
    /// Insert-or-replace a whole columnar batch in one record (group
    /// commit): the block's rows are framed, checksummed, and synced
    /// together, so durability costs are paid once per block instead of
    /// once per point.
    UpsertBlock(PointBlock),
    /// Delete a point by id.
    Delete(PointId),
    /// Marker: the shard sealed its active segment (optimizer handoff).
    SealSegment {
        /// Sequence number of the sealed segment within the shard.
        segment_seq: u64,
    },
    /// Marker: an index build finished for a sealed segment.
    IndexBuilt {
        /// Sequence number of the indexed segment.
        segment_seq: u64,
    },
}

const TAG_UPSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_SEAL: u8 = 3;
const TAG_INDEX_BUILT: u8 = 4;
const TAG_UPSERT_BLOCK: u8 = 5;

impl WalRecord {
    /// Serialize to the compact binary payload (without framing).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            WalRecord::Upsert(p) => {
                buf.put_u8(TAG_UPSERT);
                buf.put_u64_le(p.id);
                buf.put_u32_le(p.vector.len() as u32);
                for &x in &p.vector {
                    buf.put_f32_le(x);
                }
                encode_payload(&mut buf, &p.payload);
            }
            WalRecord::UpsertBlock(block) => {
                buf.put_u8(TAG_UPSERT_BLOCK);
                buf.put_u32_le(block.dim() as u32);
                buf.put_u32_le(block.len() as u32);
                for i in 0..block.len() {
                    buf.put_u64_le(block.id(i));
                }
                // Columnar vector body: one contiguous slab when the view
                // allows it, otherwise row-gathered — the byte stream is
                // identical either way.
                match block.as_contiguous() {
                    Some(slab) => {
                        for &x in slab {
                            buf.put_f32_le(x);
                        }
                    }
                    None => {
                        for i in 0..block.len() {
                            for &x in block.vector(i) {
                                buf.put_f32_le(x);
                            }
                        }
                    }
                }
                for i in 0..block.len() {
                    encode_payload(&mut buf, block.payload(i));
                }
            }
            WalRecord::Delete(id) => {
                buf.put_u8(TAG_DELETE);
                buf.put_u64_le(*id);
            }
            WalRecord::SealSegment { segment_seq } => {
                buf.put_u8(TAG_SEAL);
                buf.put_u64_le(*segment_seq);
            }
            WalRecord::IndexBuilt { segment_seq } => {
                buf.put_u8(TAG_INDEX_BUILT);
                buf.put_u64_le(*segment_seq);
            }
        }
        buf.freeze()
    }

    /// Deserialize from a payload produced by [`encode`](Self::encode).
    pub fn decode(mut buf: &[u8]) -> VqResult<Self> {
        if buf.is_empty() {
            return Err(VqError::Corruption("empty WAL payload".into()));
        }
        let tag = buf.get_u8();
        match tag {
            TAG_UPSERT => {
                if buf.remaining() < 12 {
                    return Err(VqError::Corruption("truncated upsert header".into()));
                }
                let id = buf.get_u64_le();
                let dim = buf.get_u32_le() as usize;
                if buf.remaining() < dim * 4 {
                    return Err(VqError::Corruption("truncated upsert vector".into()));
                }
                let mut vector = Vec::with_capacity(dim);
                for _ in 0..dim {
                    vector.push(buf.get_f32_le());
                }
                let payload = decode_payload(&mut buf)?;
                Ok(WalRecord::Upsert(Point::with_payload(id, vector, payload)))
            }
            TAG_UPSERT_BLOCK => {
                if buf.remaining() < 8 {
                    return Err(VqError::Corruption("truncated block header".into()));
                }
                let dim = buf.get_u32_le() as usize;
                let n = buf.get_u32_le() as usize;
                if dim == 0 {
                    return Err(VqError::Corruption("block with zero dim".into()));
                }
                if buf.remaining() < n * 8 {
                    return Err(VqError::Corruption("truncated block ids".into()));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(buf.get_u64_le());
                }
                if buf.remaining() < n * dim * 4 {
                    return Err(VqError::Corruption("truncated block slab".into()));
                }
                let mut slab = Vec::with_capacity(n * dim);
                for _ in 0..n * dim {
                    slab.push(buf.get_f32_le());
                }
                let mut payloads = Vec::with_capacity(n);
                for _ in 0..n {
                    payloads.push(decode_payload(&mut buf)?);
                }
                let block = PointBlock::from_columns(dim, ids, slab, payloads)
                    .map_err(|e| VqError::Corruption(format!("invalid block record: {e}")))?;
                Ok(WalRecord::UpsertBlock(block))
            }
            TAG_DELETE => {
                if buf.remaining() < 8 {
                    return Err(VqError::Corruption("truncated delete".into()));
                }
                Ok(WalRecord::Delete(buf.get_u64_le()))
            }
            TAG_SEAL => {
                if buf.remaining() < 8 {
                    return Err(VqError::Corruption("truncated seal".into()));
                }
                Ok(WalRecord::SealSegment {
                    segment_seq: buf.get_u64_le(),
                })
            }
            TAG_INDEX_BUILT => {
                if buf.remaining() < 8 {
                    return Err(VqError::Corruption("truncated index-built".into()));
                }
                Ok(WalRecord::IndexBuilt {
                    segment_seq: buf.get_u64_le(),
                })
            }
            other => Err(VqError::Corruption(format!("unknown WAL tag {other}"))),
        }
    }
}

const PV_STR: u8 = 1;
const PV_INT: u8 = 2;
const PV_FLOAT: u8 = 3;
const PV_BOOL: u8 = 4;
const PV_KEYWORDS: u8 = 5;

fn encode_payload(buf: &mut BytesMut, payload: &Payload) {
    buf.put_u32_le(payload.0.len() as u32);
    for (k, v) in &payload.0 {
        put_str(buf, k);
        match v {
            PayloadValue::Str(s) => {
                buf.put_u8(PV_STR);
                put_str(buf, s);
            }
            PayloadValue::Int(i) => {
                buf.put_u8(PV_INT);
                buf.put_i64_le(*i);
            }
            PayloadValue::Float(x) => {
                buf.put_u8(PV_FLOAT);
                buf.put_f64_le(*x);
            }
            PayloadValue::Bool(b) => {
                buf.put_u8(PV_BOOL);
                buf.put_u8(*b as u8);
            }
            PayloadValue::Keywords(ks) => {
                buf.put_u8(PV_KEYWORDS);
                buf.put_u32_le(ks.len() as u32);
                for k in ks {
                    put_str(buf, k);
                }
            }
        }
    }
}

fn decode_payload(buf: &mut &[u8]) -> VqResult<Payload> {
    if buf.remaining() < 4 {
        return Err(VqError::Corruption("truncated payload count".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut payload = Payload::new();
    for _ in 0..n {
        let key = get_str(buf)?;
        if buf.remaining() < 1 {
            return Err(VqError::Corruption("truncated payload value tag".into()));
        }
        let tag = buf.get_u8();
        let value = match tag {
            PV_STR => PayloadValue::Str(get_str(buf)?),
            PV_INT => {
                if buf.remaining() < 8 {
                    return Err(VqError::Corruption("truncated int".into()));
                }
                PayloadValue::Int(buf.get_i64_le())
            }
            PV_FLOAT => {
                if buf.remaining() < 8 {
                    return Err(VqError::Corruption("truncated float".into()));
                }
                PayloadValue::Float(buf.get_f64_le())
            }
            PV_BOOL => {
                if buf.remaining() < 1 {
                    return Err(VqError::Corruption("truncated bool".into()));
                }
                PayloadValue::Bool(buf.get_u8() != 0)
            }
            PV_KEYWORDS => {
                if buf.remaining() < 4 {
                    return Err(VqError::Corruption("truncated keywords len".into()));
                }
                let kn = buf.get_u32_le() as usize;
                let mut ks = Vec::with_capacity(kn.min(1024));
                for _ in 0..kn {
                    ks.push(get_str(buf)?);
                }
                PayloadValue::Keywords(ks)
            }
            other => {
                return Err(VqError::Corruption(format!(
                    "unknown payload value tag {other}"
                )))
            }
        };
        payload.0.insert(key, value);
    }
    Ok(payload)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> VqResult<String> {
    if buf.remaining() < 4 {
        return Err(VqError::Corruption("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(VqError::Corruption("truncated string body".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| VqError::Corruption("non-UTF8 string in WAL".into()))?;
    buf.advance(len);
    Ok(s)
}

/// Byte sink/source a WAL writes to. In-memory for tests and simulation;
/// file-backed for real persistence.
pub trait WalBackend: Send {
    /// Append raw bytes at the end of the log.
    fn append(&mut self, data: &[u8]) -> VqResult<()>;
    /// Read the entire log contents.
    fn read_all(&self) -> VqResult<Vec<u8>>;
    /// Truncate the log to zero length (after a snapshot checkpoint).
    fn truncate(&mut self) -> VqResult<()>;
    /// Truncate the log to exactly `len` bytes, discarding the tail.
    /// Used to cut a torn frame off a crashed log before appending again.
    fn truncate_to(&mut self, len: u64) -> VqResult<()>;
    /// Make everything appended so far durable. The default is a no-op
    /// (volatile backends have no durability point); file-backed logs
    /// flush their buffers and fsync.
    fn sync(&mut self) -> VqResult<()> {
        Ok(())
    }
    /// Current log size in bytes.
    fn len(&self) -> u64;
    /// Whether the log is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Heap-backed WAL storage.
#[derive(Debug, Default)]
pub struct MemBackend {
    data: Vec<u8>,
}

impl MemBackend {
    /// Empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WalBackend for MemBackend {
    fn append(&mut self, data: &[u8]) -> VqResult<()> {
        self.data.extend_from_slice(data);
        Ok(())
    }
    fn read_all(&self) -> VqResult<Vec<u8>> {
        Ok(self.data.clone())
    }
    fn truncate(&mut self) -> VqResult<()> {
        self.data.clear();
        Ok(())
    }
    fn truncate_to(&mut self, len: u64) -> VqResult<()> {
        self.data.truncate(len as usize);
        Ok(())
    }
    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

/// Heap-backed WAL storage that outlives any one `Wal` handle.
///
/// Clones share the same byte buffer, so the log written by a worker
/// thread survives that thread's death: a replacement worker opens a new
/// `Wal` over a clone of the same backend and replays everything the dead
/// one acknowledged. This is the in-memory-persistent durability mode the
/// cluster uses for crash/restart testing without touching the filesystem.
#[derive(Debug, Clone, Default)]
pub struct SharedBackend {
    data: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl SharedBackend {
    /// Empty shared backend.
    pub fn new() -> Self {
        Self::default()
    }

    fn buf(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {
        // A poisoned lock just means some thread panicked mid-append; the
        // bytes written so far are still the authoritative log (exactly
        // like a torn file after a crash), so keep serving them.
        self.data.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl WalBackend for SharedBackend {
    fn append(&mut self, data: &[u8]) -> VqResult<()> {
        self.buf().extend_from_slice(data);
        Ok(())
    }
    fn read_all(&self) -> VqResult<Vec<u8>> {
        Ok(self.buf().clone())
    }
    fn truncate(&mut self) -> VqResult<()> {
        self.buf().clear();
        Ok(())
    }
    fn truncate_to(&mut self, len: u64) -> VqResult<()> {
        self.buf().truncate(len as usize);
        Ok(())
    }
    fn len(&self) -> u64 {
        self.buf().len() as u64
    }
}

/// File-backed WAL storage (buffered appends, explicit `sync`).
#[derive(Debug)]
pub struct FileBackend {
    path: std::path::PathBuf,
    file: std::io::BufWriter<std::fs::File>,
    len: u64,
}

impl FileBackend {
    /// Open (creating or appending to) the log at `path`.
    pub fn open(path: impl Into<std::path::PathBuf>) -> VqResult<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| VqError::Corruption(format!("open WAL {path:?}: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| VqError::Corruption(format!("stat WAL: {e}")))?
            .len();
        Ok(FileBackend {
            path,
            file: std::io::BufWriter::new(file),
            len,
        })
    }

    /// Flush buffered appends to the OS.
    pub fn flush(&mut self) -> VqResult<()> {
        use std::io::Write;
        self.file
            .flush()
            .map_err(|e| VqError::Corruption(format!("flush WAL: {e}")))
    }
}

impl WalBackend for FileBackend {
    fn append(&mut self, data: &[u8]) -> VqResult<()> {
        use std::io::Write;
        self.file
            .write_all(data)
            .map_err(|e| VqError::Corruption(format!("append WAL: {e}")))?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn read_all(&self) -> VqResult<Vec<u8>> {
        std::fs::read(&self.path).map_err(|e| VqError::Corruption(format!("read WAL: {e}")))
    }

    fn truncate(&mut self) -> VqResult<()> {
        use std::io::Write;
        self.file.flush().ok();
        std::fs::write(&self.path, b"")
            .map_err(|e| VqError::Corruption(format!("truncate WAL: {e}")))?;
        self.len = 0;
        Ok(())
    }

    fn truncate_to(&mut self, len: u64) -> VqResult<()> {
        use std::io::Write;
        self.file
            .flush()
            .map_err(|e| VqError::Corruption(format!("flush WAL: {e}")))?;
        self.file
            .get_ref()
            .set_len(len)
            .map_err(|e| VqError::Corruption(format!("truncate WAL to {len}: {e}")))?;
        self.len = len;
        Ok(())
    }

    fn sync(&mut self) -> VqResult<()> {
        use std::io::Write;
        self.file
            .flush()
            .map_err(|e| VqError::Corruption(format!("flush WAL: {e}")))?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| VqError::Corruption(format!("sync WAL: {e}")))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// The write-ahead log: framing + CRC over a [`WalBackend`].
///
/// ```
/// use vq_storage::{Wal, WalRecord};
/// use vq_core::Point;
///
/// let mut wal = Wal::in_memory();
/// wal.append(&WalRecord::Upsert(Point::new(1, vec![0.5, 0.5]))).unwrap();
/// wal.append(&WalRecord::Delete(1)).unwrap();
/// let replayed = wal.replay().unwrap();
/// assert_eq!(replayed.len(), 2);
/// assert_eq!(replayed[1], WalRecord::Delete(1));
/// ```
pub struct Wal {
    backend: Box<dyn WalBackend>,
    records: u64,
    synced_batches: u64,
    // Whether the tail has been checked for a torn frame since open. A
    // crashed writer leaves a partial frame at the end; replay skips it,
    // but an append after it would strand every later record behind
    // unparseable bytes. The first append therefore truncates the torn
    // tail first.
    tail_checked: bool,
    // Registry mirror of `synced_batches`, aggregated across every WAL in
    // the process; the local field keeps per-log group-commit accounting.
    synced_shared: std::sync::Arc<vq_obs::Counter>,
}

impl Wal {
    /// WAL over an in-memory backend.
    pub fn in_memory() -> Self {
        Wal::with_backend(Box::new(MemBackend::new()))
    }

    /// WAL over any backend.
    pub fn with_backend(backend: Box<dyn WalBackend>) -> Self {
        Wal {
            backend,
            records: 0,
            synced_batches: 0,
            tail_checked: false,
            synced_shared: vq_obs::handle_counter("wal.synced_batches"),
        }
    }

    /// Cut a torn (partial) frame off the end of the log, if present.
    ///
    /// Returns the number of bytes discarded. Complete frames are never
    /// touched — even ones with a bad CRC, which are corruption that
    /// [`Self::replay`] must keep reporting, not crash debris to hide.
    pub fn repair_torn_tail(&mut self) -> VqResult<u64> {
        let data = self.backend.read_all()?;
        let mut buf = &data[..];
        let mut valid = 0u64;
        while buf.remaining() >= 8 {
            let len = (&buf[..4]).get_u32_le() as usize;
            if buf.remaining() < 8 + len {
                break; // torn tail starts here
            }
            buf.advance(8 + len);
            valid += 8 + len as u64;
        }
        let torn = data.len() as u64 - valid;
        if torn > 0 {
            self.backend.truncate_to(valid)?;
        }
        self.tail_checked = true;
        Ok(torn)
    }

    /// Append one record (framed + checksummed) and sync it durable.
    ///
    /// Every append is its own durability point, so the sync count equals
    /// the *record* count: per-point ingest pays one sync per point, while
    /// block ingest ([`WalRecord::UpsertBlock`]) group-commits a whole
    /// batch under a single sync. [`Self::synced_batches`] exposes the
    /// counter so tests can pin that accounting.
    pub fn append(&mut self, record: &WalRecord) -> VqResult<()> {
        if !self.tail_checked {
            self.repair_torn_tail()?;
        }
        let payload = record.encode();
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.put_slice(&payload);
        self.backend.append(&frame)?;
        let stamp = vq_obs::enabled().then(std::time::Instant::now);
        self.backend.sync()?;
        if let Some(stamp) = stamp {
            vq_obs::record_phase("wal_sync", 0, stamp.elapsed().as_secs_f64());
        }
        self.records += 1;
        self.synced_batches += 1;
        self.synced_shared.add(1);
        Ok(())
    }

    /// Records appended through this handle (not counting pre-existing).
    pub fn appended_records(&self) -> u64 {
        self.records
    }

    /// Durability points paid through this handle: one per appended
    /// record. The group-commit win of the block ingest path is exactly
    /// this number staying at "blocks", not "points".
    pub fn synced_batches(&self) -> u64 {
        self.synced_batches
    }

    /// Log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.backend.len()
    }

    /// Replay every intact record.
    ///
    /// A torn tail (truncated frame) ends replay silently — that is the
    /// expected crash shape. A *corrupted* record (bad CRC with complete
    /// framing) is an integrity error and is reported.
    pub fn replay(&self) -> VqResult<Vec<WalRecord>> {
        let data = self.backend.read_all()?;
        let mut buf = &data[..];
        let mut out = Vec::new();
        while buf.remaining() >= 8 {
            let len = (&buf[..4]).get_u32_le() as usize;
            if buf.remaining() < 8 + len {
                break; // torn tail
            }
            buf.advance(4);
            let crc = buf.get_u32_le();
            let payload = &buf[..len];
            if crc32(payload) != crc {
                return Err(VqError::Corruption(format!(
                    "WAL CRC mismatch in record {}",
                    out.len()
                )));
            }
            out.push(WalRecord::decode(payload)?);
            buf.advance(len);
        }
        Ok(out)
    }

    /// Drop all records (after a snapshot made them redundant).
    pub fn checkpoint(&mut self) -> VqResult<()> {
        self.backend.truncate()?;
        self.tail_checked = true; // an empty log has no torn tail
        Ok(())
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.records)
            .field("bytes", &self.backend.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point() -> Point {
        Point::with_payload(
            42,
            vec![1.5, -2.5, 0.0],
            Payload::from_pairs([("title", "paper"), ("terms", "genome")]),
        )
    }

    #[test]
    fn record_codec_roundtrip() {
        for rec in [
            WalRecord::Upsert(sample_point()),
            WalRecord::Delete(7),
            WalRecord::SealSegment { segment_seq: 3 },
            WalRecord::IndexBuilt { segment_seq: 3 },
        ] {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn payload_value_kinds_roundtrip() {
        let mut p = Payload::new();
        p.insert("s", "text");
        p.insert("i", -5i64);
        p.insert("f", 2.75f64);
        p.insert("b", true);
        p.insert(
            "k",
            PayloadValue::Keywords(vec!["a".into(), "b".into()]),
        );
        let rec = WalRecord::Upsert(Point::with_payload(1, vec![0.0], p));
        let enc = rec.encode();
        assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
    }

    #[test]
    fn block_record_roundtrips_contiguous_and_gathered() {
        let points: Vec<Point> = (0..5)
            .map(|i| {
                Point::with_payload(
                    i,
                    vec![i as f32, -(i as f32), 0.5],
                    Payload::from_pairs([("row", i as i64)]),
                )
            })
            .collect();
        let block = PointBlock::from_points(&points).unwrap();
        let rec = WalRecord::UpsertBlock(block.slice(1..4));
        let enc = rec.encode();
        assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        // A gather view encodes to the same bytes as the equivalent
        // contiguous view: the codec is columnar, not view-shaped.
        let gathered = WalRecord::UpsertBlock(block.select(&[1, 2, 3]));
        assert_eq!(gathered.encode(), enc);
        // Empty blocks are legal records.
        let empty = WalRecord::UpsertBlock(PointBlock::from_points(&[]).unwrap());
        assert_eq!(WalRecord::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn sync_count_is_per_record_group_commit() {
        let mut wal = Wal::in_memory();
        assert_eq!(wal.synced_batches(), 0);
        // Per-point ingest: one sync per point.
        for i in 0..3 {
            wal.append(&WalRecord::Upsert(Point::new(i, vec![0.0]))).unwrap();
        }
        assert_eq!(wal.synced_batches(), 3);
        // Block ingest: 100 points, ONE sync.
        let points: Vec<Point> = (0..100).map(|i| Point::new(100 + i, vec![1.0])).collect();
        let block = PointBlock::from_points(&points).unwrap();
        wal.append(&WalRecord::UpsertBlock(block)).unwrap();
        assert_eq!(wal.synced_batches(), 4);
        assert_eq!(wal.appended_records(), 4);
    }

    #[test]
    fn file_backend_sync_is_durable_and_counted() {
        let path = std::env::temp_dir().join(format!(
            "vq-wal-sync-test-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::open(&path).unwrap();
        let mut wal = Wal::with_backend(Box::new(backend));
        let block =
            PointBlock::from_points(&[sample_point(), Point::new(7, vec![0.0; 3])]).unwrap();
        wal.append(&WalRecord::UpsertBlock(block.clone())).unwrap();
        assert_eq!(wal.synced_batches(), 1);
        // The frame is on disk *before* the Wal (and its BufWriter) drops.
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len() as u64, wal.bytes());
        let reopened = Wal::with_backend(Box::new(FileBackend::open(&path).unwrap()));
        assert_eq!(reopened.replay().unwrap(), vec![WalRecord::UpsertBlock(block)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_replay_in_memory() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Upsert(sample_point())).unwrap();
        wal.append(&WalRecord::Delete(42)).unwrap();
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1], WalRecord::Delete(42));
        assert_eq!(wal.appended_records(), 2);
    }

    #[test]
    fn torn_tail_is_silently_dropped() {
        let mut backend = MemBackend::new();
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Delete(1)).unwrap();
        let full = wal.backend.read_all().unwrap();
        backend.append(&full).unwrap();
        backend.append(&[0x09, 0x00, 0x00, 0x00, 0xAA]).unwrap(); // torn frame
        let wal2 = Wal::with_backend(Box::new(backend));
        let replayed = wal2.replay().unwrap();
        assert_eq!(replayed, vec![WalRecord::Delete(1)]);
    }

    #[test]
    fn reopen_after_torn_tail_keeps_later_appends_reachable() {
        // Crash shape: a writer dies mid-frame, leaving a torn tail. The
        // bug: a reopened Wal appended AFTER the torn bytes, so replay
        // (which stops at the first torn frame) could never reach any
        // post-crash record. The reopened log must truncate the torn tail
        // before its first append.
        let shared = SharedBackend::new();
        let mut wal = Wal::with_backend(Box::new(shared.clone()));
        wal.append(&WalRecord::Delete(1)).unwrap();
        wal.append(&WalRecord::Delete(2)).unwrap();
        drop(wal);
        // Torn frame: claims 9 payload bytes, provides 1.
        let mut raw = shared.clone();
        raw.append(&[0x09, 0x00, 0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0x01])
            .unwrap();
        // Reopen, append, replay: the post-crash record must be visible.
        let mut reopened = Wal::with_backend(Box::new(shared.clone()));
        reopened.append(&WalRecord::Delete(3)).unwrap();
        assert_eq!(
            reopened.replay().unwrap(),
            vec![
                WalRecord::Delete(1),
                WalRecord::Delete(2),
                WalRecord::Delete(3)
            ]
        );
    }

    #[test]
    fn repair_torn_tail_reports_bytes_and_spares_intact_logs() {
        let shared = SharedBackend::new();
        let mut wal = Wal::with_backend(Box::new(shared.clone()));
        wal.append(&WalRecord::Delete(1)).unwrap();
        let intact = wal.bytes();
        assert_eq!(wal.repair_torn_tail().unwrap(), 0);
        assert_eq!(wal.bytes(), intact);
        let mut raw = shared.clone();
        raw.append(&[0xFF, 0x00, 0x00, 0x00, 0x01]).unwrap();
        let mut reopened = Wal::with_backend(Box::new(shared));
        assert_eq!(reopened.repair_torn_tail().unwrap(), 5);
        assert_eq!(reopened.bytes(), intact);
        // A complete frame with a bad CRC is corruption, not a torn tail:
        // repair must keep it so replay still reports the error.
        let mut backend = MemBackend::new();
        let mut good = Wal::in_memory();
        good.append(&WalRecord::Delete(9)).unwrap();
        let mut bytes = good.backend.read_all().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        backend.append(&bytes).unwrap();
        let mut corrupt = Wal::with_backend(Box::new(backend));
        assert_eq!(corrupt.repair_torn_tail().unwrap(), 0);
        assert!(matches!(corrupt.replay(), Err(VqError::Corruption(_))));
    }

    #[test]
    fn file_backend_reopen_after_torn_tail() {
        let path = std::env::temp_dir().join(format!(
            "vq-wal-torn-test-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::with_backend(Box::new(FileBackend::open(&path).unwrap()));
            wal.append(&WalRecord::Delete(1)).unwrap();
        }
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0x20, 0x00, 0x00, 0x00, 0xAB]).unwrap(); // torn frame
        }
        let mut reopened = Wal::with_backend(Box::new(FileBackend::open(&path).unwrap()));
        reopened.append(&WalRecord::Delete(2)).unwrap();
        assert_eq!(
            reopened.replay().unwrap(),
            vec![WalRecord::Delete(1), WalRecord::Delete(2)]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shared_backend_survives_writer_drop() {
        let shared = SharedBackend::new();
        {
            let mut wal = Wal::with_backend(Box::new(shared.clone()));
            wal.append(&WalRecord::Upsert(sample_point())).unwrap();
            // Writer "dies" here; the shared buffer is the durable copy.
        }
        let recovered = Wal::with_backend(Box::new(shared));
        assert_eq!(
            recovered.replay().unwrap(),
            vec![WalRecord::Upsert(sample_point())]
        );
    }

    #[test]
    fn crc_corruption_is_an_error() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Delete(1)).unwrap();
        let mut bytes = wal.backend.read_all().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload byte, framing intact
        let mut backend = MemBackend::new();
        backend.append(&bytes).unwrap();
        let wal2 = Wal::with_backend(Box::new(backend));
        assert!(matches!(wal2.replay(), Err(VqError::Corruption(_))));
    }

    #[test]
    fn checkpoint_clears_log() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Delete(1)).unwrap();
        assert!(wal.bytes() > 0);
        wal.checkpoint().unwrap();
        assert_eq!(wal.bytes(), 0);
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = std::env::temp_dir().join(format!("vq-wal-test-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let backend = FileBackend::open(&path).unwrap();
            let mut wal = Wal::with_backend(Box::new(backend));
            wal.append(&WalRecord::Upsert(sample_point())).unwrap();
            wal.append(&WalRecord::SealSegment { segment_seq: 1 }).unwrap();
            // Wal drops; BufWriter flushes on drop.
        }
        {
            let backend = FileBackend::open(&path).unwrap();
            let wal = Wal::with_backend(Box::new(backend));
            let replayed = wal.replay().unwrap();
            assert_eq!(replayed.len(), 2);
            assert_eq!(replayed[0], WalRecord::Upsert(sample_point()));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_wal_replays_empty() {
        assert!(Wal::in_memory().replay().unwrap().is_empty());
    }
}
