//! # vq-storage
//!
//! Storage substrate for `vq` segments, mirroring the stateful half of a
//! Qdrant worker:
//!
//! * [`arena`] — paged, append-only vector arena. Pages are fixed-size so
//!   growth never moves existing vectors (readers hold stable references
//!   while writers append, which the collection layer relies on).
//! * [`id_tracker`] — the `PointId ↔ offset` bimap with upsert versioning
//!   and tombstones.
//! * [`payload_store`] — offset-indexed payload storage.
//! * [`wal`] — an append-only write-ahead log with CRC-checked framing and
//!   replay, over in-memory or file backends.
//! * [`segment_store`] — the composition of the above: the durable state
//!   of one shard replica, with snapshot/restore.
//! * [`tier`] — demand-paged full-precision vector tier: spills vectors
//!   to a file (or shared-heap) backend behind a bounded LRU page cache,
//!   so only PQ codes stay resident and exact rerank re-reads survivors
//!   on demand.
//! * [`crc`] — CRC-32 (IEEE) used by WAL framing, implemented locally to
//!   keep the dependency set minimal.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arena;
pub mod crc;
pub mod id_tracker;
pub mod payload_index;
pub mod payload_store;
pub mod segment_store;
pub mod tier;
pub mod wal;

pub use arena::PagedArena;
pub use id_tracker::IdTracker;
pub use payload_index::PayloadIndex;
pub use payload_store::PayloadStore;
pub use segment_store::{SegmentSnapshot, SegmentStore};
pub use tier::{FileTierBackend, FullPrecisionTier, SharedTierBackend, TierBackend, TierConfig};
pub use wal::{FileBackend, MemBackend, SharedBackend, Wal, WalBackend, WalRecord};
