//! Offset-indexed payload storage.
//!
//! Payloads live beside vectors, addressed by the same dense offsets. The
//! store is append-only like the arena; upserted/deleted offsets simply
//! become unreachable through the id tracker.

use vq_core::Payload;

/// Append-only payload column.
#[derive(Debug, Default, Clone)]
pub struct PayloadStore {
    payloads: Vec<Payload>,
    bytes: usize,
}

impl PayloadStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the payload for the next offset; returns that offset.
    pub fn push(&mut self, payload: Payload) -> u32 {
        let offset = self.payloads.len() as u32;
        self.bytes += payload.approx_bytes();
        self.payloads.push(payload);
        offset
    }

    /// Payload at `offset`.
    pub fn get(&self, offset: u32) -> &Payload {
        &self.payloads[offset as usize]
    }

    /// Number of stored payloads (== arena length when kept in lockstep).
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Approximate retained payload bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// All payloads in offset order (snapshots).
    pub fn export(&self) -> &[Payload] {
        &self.payloads
    }

    /// Rebuild from exported payloads.
    pub fn import(payloads: Vec<Payload>) -> Self {
        let bytes = payloads.iter().map(Payload::approx_bytes).sum();
        PayloadStore { payloads, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_in_lockstep() {
        let mut s = PayloadStore::new();
        let p0 = Payload::from_pairs([("a", 1i64)]);
        let p1 = Payload::from_pairs([("b", 2i64)]);
        assert_eq!(s.push(p0.clone()), 0);
        assert_eq!(s.push(p1.clone()), 1);
        assert_eq!(s.get(0), &p0);
        assert_eq!(s.get(1), &p1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn byte_accounting_accumulates() {
        let mut s = PayloadStore::new();
        assert_eq!(s.approx_bytes(), 0);
        s.push(Payload::from_pairs([("k", "hello")]));
        let one = s.approx_bytes();
        assert!(one > 0);
        s.push(Payload::from_pairs([("k", "hello")]));
        assert_eq!(s.approx_bytes(), 2 * one);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut s = PayloadStore::new();
        s.push(Payload::from_pairs([("x", true)]));
        s.push(Payload::new());
        let r = PayloadStore::import(s.export().to_vec());
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0), s.get(0));
        assert_eq!(r.approx_bytes(), s.approx_bytes());
    }
}
