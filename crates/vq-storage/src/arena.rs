//! Paged append-only vector arena.
//!
//! The arena stores fixed-dimension `f32` vectors in fixed-capacity pages.
//! Because a full page is never reallocated, a vector's address is stable
//! for the arena's lifetime — concurrent readers can score against it while
//! a single writer appends new pages. This mimics the role of Qdrant's
//! mmap-backed vector storage: growth without copying, locality within a
//! page.

use vq_core::{VqError, VqResult};

/// Default number of vectors per page. 4096 × 2560 dims × 4 B ≈ 40 MiB per
/// page at Qwen3 scale; small enough to not overshoot, big enough that the
/// page table stays tiny.
pub const DEFAULT_PAGE_VECTORS: usize = 4096;

/// A paged vector arena. Single-writer, many-reader (readers only need
/// `&self`; the collection layer wraps it in the appropriate lock).
#[derive(Debug)]
pub struct PagedArena {
    dim: usize,
    page_vectors: usize,
    pages: Vec<Box<[f32]>>,
    len: usize,
}

impl PagedArena {
    /// New arena for `dim`-dimensional vectors with the default page size.
    pub fn new(dim: usize) -> Self {
        Self::with_page_vectors(dim, DEFAULT_PAGE_VECTORS)
    }

    /// New arena with an explicit page capacity (in vectors).
    pub fn with_page_vectors(dim: usize, page_vectors: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(page_vectors > 0, "page must hold at least one vector");
        PagedArena {
            dim,
            page_vectors,
            pages: Vec::new(),
            len: 0,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Bytes currently allocated for vector data.
    pub fn allocated_bytes(&self) -> usize {
        self.pages.len() * self.page_vectors * self.dim * 4
    }

    /// Append a vector, returning its dense offset.
    pub fn push(&mut self, v: &[f32]) -> VqResult<u32> {
        if v.len() != self.dim {
            return Err(VqError::DimensionMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        let slot = self.len % self.page_vectors;
        if slot == 0 {
            self.pages
                .push(vec![0.0f32; self.page_vectors * self.dim].into_boxed_slice());
            vq_obs::count("arena.pages_materialized", 1);
        }
        let page = self.pages.last_mut().expect("just ensured");
        page[slot * self.dim..(slot + 1) * self.dim].copy_from_slice(v);
        let offset = self.len as u32;
        self.len += 1;
        Ok(offset)
    }

    /// Bulk-append whole vectors from one contiguous row-major `slab`
    /// (`rows × dim` floats), copying page-granular runs instead of one
    /// vector at a time. This is the arena half of the zero-copy block
    /// ingest path: a [`vq_core::PointBlock`]'s shared slab lands here in
    /// at most `⌈rows / page_vectors⌉ + 1` `memcpy`s. Returns the offset
    /// of the first appended vector.
    ///
    /// The resulting arena state is identical to pushing each row with
    /// [`Self::push`] in order.
    pub fn extend_from_slab(&mut self, slab: &[f32]) -> VqResult<u32> {
        if slab.len() % self.dim != 0 {
            return Err(VqError::Internal(format!(
                "slab length {} is not a multiple of dim {}",
                slab.len(),
                self.dim
            )));
        }
        let rows = slab.len() / self.dim;
        let first = self.len as u32;
        let mut copied = 0usize;
        while copied < rows {
            let slot = self.len % self.page_vectors;
            if slot == 0 && rows - copied >= self.page_vectors {
                // The slab covers this whole page: materialize it straight
                // from the slab run instead of zero-filling then
                // overwriting. On reused allocator memory this skips a
                // full-page memset; the resulting bytes are identical
                // either way — every slot is overwritten.
                let run = &slab[copied * self.dim..(copied + self.page_vectors) * self.dim];
                self.pages.push(run.to_vec().into_boxed_slice());
                vq_obs::count("arena.pages_materialized", 1);
                self.len += self.page_vectors;
                copied += self.page_vectors;
                continue;
            }
            if slot == 0 {
                self.pages
                    .push(vec![0.0f32; self.page_vectors * self.dim].into_boxed_slice());
                vq_obs::count("arena.pages_materialized", 1);
            }
            let take = (self.page_vectors - slot).min(rows - copied);
            let page = self.pages.last_mut().expect("just ensured");
            page[slot * self.dim..(slot + take) * self.dim]
                .copy_from_slice(&slab[copied * self.dim..(copied + take) * self.dim]);
            self.len += take;
            copied += take;
        }
        Ok(first)
    }

    /// Mutably borrow the vector at `offset` (in-place fix-ups on the
    /// unsealed write path, e.g. post-copy normalization for cosine
    /// collections).
    pub fn vector_mut(&mut self, offset: u32) -> VqResult<&mut [f32]> {
        let offset = offset as usize;
        if offset >= self.len {
            return Err(VqError::Internal(format!(
                "vector_mut past end: {offset} >= {}",
                self.len
            )));
        }
        let page = offset / self.page_vectors;
        let slot = offset % self.page_vectors;
        Ok(&mut self.pages[page][slot * self.dim..(slot + 1) * self.dim])
    }

    /// Borrow the vector at `offset`.
    ///
    /// # Panics
    /// If `offset >= len()`.
    #[inline]
    pub fn get(&self, offset: u32) -> &[f32] {
        let offset = offset as usize;
        assert!(offset < self.len, "offset {offset} out of range {}", self.len);
        let page = offset / self.page_vectors;
        let slot = offset % self.page_vectors;
        &self.pages[page][slot * self.dim..(slot + 1) * self.dim]
    }

    /// Overwrite the vector at an existing offset (used by upsert-in-place
    /// before a segment is sealed).
    pub fn overwrite(&mut self, offset: u32, v: &[f32]) -> VqResult<()> {
        if v.len() != self.dim {
            return Err(VqError::DimensionMismatch {
                expected: self.dim,
                got: v.len(),
            });
        }
        let offset = offset as usize;
        if offset >= self.len {
            return Err(VqError::Internal(format!(
                "overwrite past end: {offset} >= {}",
                self.len
            )));
        }
        let page = offset / self.page_vectors;
        let slot = offset % self.page_vectors;
        self.pages[page][slot * self.dim..(slot + 1) * self.dim].copy_from_slice(v);
        Ok(())
    }

    /// Borrow the run of contiguous storage from `offset` to the end of
    /// its page (or of the arena, whichever comes first), as one flat
    /// row-major slice of whole vectors. Blocked scans score an entire
    /// page per kernel call instead of one [`Self::get`] per vector.
    ///
    /// # Panics
    /// If `offset >= len()`.
    #[inline]
    pub fn page_block(&self, offset: u32) -> &[f32] {
        let offset = offset as usize;
        assert!(offset < self.len, "offset {offset} out of range {}", self.len);
        let page = offset / self.page_vectors;
        let slot = offset % self.page_vectors;
        let page_start = page * self.page_vectors;
        let in_page = (self.len - page_start).min(self.page_vectors);
        &self.pages[page][slot * self.dim..in_page * self.dim]
    }

    /// Iterate `(first_offset, block)` pairs covering all vectors in
    /// order, one page-contiguous block at a time.
    pub fn blocks(&self) -> impl Iterator<Item = (u32, &[f32])> + '_ {
        let mut offset = 0u32;
        std::iter::from_fn(move || {
            if (offset as usize) >= self.len {
                return None;
            }
            let block = self.page_block(offset);
            let first = offset;
            offset += (block.len() / self.dim) as u32;
            Some((first, block))
        })
    }

    /// Iterate all vectors in offset order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        (0..self.len as u32).map(move |o| self.get(o))
    }

    /// Flatten into one contiguous buffer (snapshot serialization).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len * self.dim);
        for v in self.iter() {
            out.extend_from_slice(v);
        }
        out
    }

    /// Rebuild from a flat buffer (snapshot restore).
    pub fn from_flat(dim: usize, data: &[f32]) -> VqResult<Self> {
        if dim == 0 || data.len() % dim != 0 {
            return Err(VqError::Corruption(format!(
                "flat buffer length {} not a multiple of dim {dim}",
                data.len()
            )));
        }
        let mut arena = Self::new(dim);
        for chunk in data.chunks_exact(dim) {
            arena.push(chunk)?;
        }
        Ok(arena)
    }
}

impl vq_index::VectorSource for PagedArena {
    fn dim(&self) -> usize {
        self.dim
    }
    fn len(&self) -> usize {
        self.len
    }
    fn vector(&self, offset: u32) -> &[f32] {
        self.get(offset)
    }
    fn contiguous_block(&self, offset: u32) -> &[f32] {
        self.page_block(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_across_pages() {
        let mut a = PagedArena::with_page_vectors(3, 2);
        for i in 0..7 {
            let v = [i as f32, 0.0, 0.0];
            assert_eq!(a.push(&v).unwrap(), i);
        }
        assert_eq!(a.len(), 7);
        assert_eq!(a.page_count(), 4);
        for i in 0..7u32 {
            assert_eq!(a.get(i)[0], i as f32);
        }
    }

    #[test]
    fn dimension_checked() {
        let mut a = PagedArena::new(4);
        assert!(matches!(
            a.push(&[0.0; 3]),
            Err(VqError::DimensionMismatch { expected: 4, got: 3 })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let a = PagedArena::new(2);
        a.get(0);
    }

    #[test]
    fn overwrite_in_place() {
        let mut a = PagedArena::with_page_vectors(2, 2);
        a.push(&[1.0, 1.0]).unwrap();
        a.push(&[2.0, 2.0]).unwrap();
        a.overwrite(0, &[9.0, 9.0]).unwrap();
        assert_eq!(a.get(0), &[9.0, 9.0]);
        assert_eq!(a.get(1), &[2.0, 2.0]);
        assert!(a.overwrite(5, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn flat_roundtrip() {
        let mut a = PagedArena::with_page_vectors(2, 3);
        for i in 0..5 {
            a.push(&[i as f32, -(i as f32)]).unwrap();
        }
        let flat = a.to_flat();
        let b = PagedArena::from_flat(2, &flat).unwrap();
        assert_eq!(b.len(), 5);
        for i in 0..5u32 {
            assert_eq!(a.get(i), b.get(i));
        }
        assert!(PagedArena::from_flat(3, &flat[..4]).is_err());
    }

    #[test]
    fn addresses_stable_across_growth() {
        let mut a = PagedArena::with_page_vectors(1, 2);
        a.push(&[1.0]).unwrap();
        let p0 = a.get(0).as_ptr();
        for i in 0..100 {
            a.push(&[i as f32]).unwrap();
        }
        assert_eq!(a.get(0).as_ptr(), p0, "page must never move");
    }

    #[test]
    fn vector_source_impl() {
        use vq_index::VectorSource;
        let mut a = PagedArena::new(2);
        a.push(&[0.5, 0.5]).unwrap();
        assert_eq!(VectorSource::dim(&a), 2);
        assert_eq!(VectorSource::len(&a), 1);
        assert_eq!(VectorSource::vector(&a, 0), &[0.5, 0.5]);
    }

    #[test]
    fn page_block_covers_page_and_respects_len() {
        let mut a = PagedArena::with_page_vectors(2, 3);
        for i in 0..7 {
            a.push(&[i as f32, i as f32]).unwrap();
        }
        // Mid-page start: rest of page 0 (slots 1, 2).
        assert_eq!(a.page_block(1), &[1.0, 1.0, 2.0, 2.0]);
        // Page boundary: whole page 1.
        assert_eq!(a.page_block(3).len(), 3 * 2);
        // Last page is partially filled: only the live vector.
        assert_eq!(a.page_block(6), &[6.0, 6.0]);
    }

    #[test]
    fn blocks_cover_every_offset_once() {
        let mut a = PagedArena::with_page_vectors(3, 4);
        for i in 0..11 {
            a.push(&[i as f32, 0.0, 0.0]).unwrap();
        }
        let mut seen = 0u32;
        for (first, block) in a.blocks() {
            assert_eq!(first, seen);
            let rows = block.len() / 3;
            for r in 0..rows {
                assert_eq!(block[r * 3], (seen + r as u32) as f32);
            }
            seen += rows as u32;
        }
        assert_eq!(seen, 11);
    }

    #[test]
    fn contiguous_block_matches_page_block() {
        use vq_index::VectorSource;
        let mut a = PagedArena::with_page_vectors(2, 2);
        for i in 0..5 {
            a.push(&[i as f32, -(i as f32)]).unwrap();
        }
        assert_eq!(VectorSource::contiguous_block(&a, 1), a.page_block(1));
        assert_eq!(VectorSource::contiguous_block(&a, 2), a.page_block(2));
    }

    #[test]
    fn extend_from_slab_matches_per_push() {
        // Start mid-page, cross two page boundaries, end mid-page.
        let slab: Vec<f32> = (0..9 * 2).map(|x| x as f32).collect();
        let mut bulk = PagedArena::with_page_vectors(2, 4);
        let mut reference = PagedArena::with_page_vectors(2, 4);
        bulk.push(&[100.0, 101.0]).unwrap();
        reference.push(&[100.0, 101.0]).unwrap();
        let first = bulk.extend_from_slab(&slab).unwrap();
        assert_eq!(first, 1);
        for row in slab.chunks_exact(2) {
            reference.push(row).unwrap();
        }
        assert_eq!(bulk.len(), reference.len());
        assert_eq!(bulk.page_count(), reference.page_count());
        for o in 0..bulk.len() as u32 {
            assert_eq!(bulk.get(o), reference.get(o));
        }
    }

    #[test]
    fn extend_from_slab_on_empty_and_boundary() {
        let mut a = PagedArena::with_page_vectors(3, 2);
        assert_eq!(a.extend_from_slab(&[]).unwrap(), 0);
        assert_eq!(a.len(), 0);
        // Exactly one page.
        let one_page: Vec<f32> = (0..6).map(|x| x as f32).collect();
        assert_eq!(a.extend_from_slab(&one_page).unwrap(), 0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.page_count(), 1);
        // Appending again starts a fresh page.
        assert_eq!(a.extend_from_slab(&one_page).unwrap(), 2);
        assert_eq!(a.page_count(), 2);
        assert_eq!(a.get(3), &[3.0, 4.0, 5.0]);
        // Ragged slab rejected.
        assert!(a.extend_from_slab(&[0.0; 4]).is_err());
    }

    #[test]
    fn vector_mut_edits_in_place() {
        let mut a = PagedArena::with_page_vectors(2, 2);
        a.push(&[3.0, 4.0]).unwrap();
        a.vector_mut(0).unwrap()[1] = 9.0;
        assert_eq!(a.get(0), &[3.0, 9.0]);
        assert!(a.vector_mut(1).is_err());
    }

    #[test]
    fn allocated_bytes_tracks_pages() {
        let mut a = PagedArena::with_page_vectors(4, 8);
        assert_eq!(a.allocated_bytes(), 0);
        a.push(&[0.0; 4]).unwrap();
        assert_eq!(a.allocated_bytes(), 8 * 4 * 4);
    }
}
