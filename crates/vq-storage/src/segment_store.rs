//! Segment storage: the durable state of one segment.
//!
//! A segment store composes the vector arena, the id tracker, and the
//! payload column, and applies logical mutations ([`WalRecord`]s) to them
//! in one place — both on the live write path and during WAL replay, so
//! recovery is by construction the same code as normal operation.
//!
//! Snapshots serialize the whole store into a [`SegmentSnapshot`] (a serde
//! manifest plus a flat vector blob); restoring one and replaying the WAL
//! tail reproduces the exact pre-crash state.

use crate::arena::PagedArena;
use crate::id_tracker::IdTracker;
use crate::payload_index::PayloadIndex;
use crate::payload_store::PayloadStore;
use crate::wal::WalRecord;
use serde::{Deserialize, Serialize};
use vq_core::{Payload, Point, PointBlock, PointId, VqError, VqResult};

/// Storage of one segment (vectors + ids + payloads + payload index).
#[derive(Debug)]
pub struct SegmentStore {
    arena: PagedArena,
    ids: IdTracker,
    payloads: PayloadStore,
    payload_index: PayloadIndex,
    sealed: bool,
}

impl SegmentStore {
    /// Empty store for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        SegmentStore {
            arena: PagedArena::new(dim),
            ids: IdTracker::new(),
            payloads: PayloadStore::new(),
            payload_index: PayloadIndex::new(),
            sealed: false,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.arena.dim()
    }

    /// Live point count.
    pub fn live_count(&self) -> usize {
        self.ids.live_count()
    }

    /// Total offsets (live + tombstoned) — the size indexes see.
    pub fn total_offsets(&self) -> usize {
        self.ids.total_offsets()
    }

    /// Whether the segment has been sealed (no further writes).
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Seal the segment: subsequent mutations are rejected.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Fraction of tombstoned offsets.
    pub fn tombstone_ratio(&self) -> f64 {
        self.ids.tombstone_ratio()
    }

    /// Approximate stored bytes (vectors live+dead, plus payloads).
    pub fn approx_bytes(&self) -> usize {
        self.arena.len() * self.dim() * 4 + self.payloads.approx_bytes()
    }

    /// Insert or replace a point.
    pub fn upsert(&mut self, point: Point) -> VqResult<()> {
        if self.sealed {
            return Err(VqError::InvalidRequest("segment is sealed".into()));
        }
        let offset = self.arena.push(&point.vector)?;
        self.payload_index.insert(offset, &point.payload);
        let pay_offset = self.payloads.push(point.payload);
        debug_assert_eq!(offset, pay_offset);
        self.ids.bind(point.id, offset)?;
        Ok(())
    }

    /// Bulk insert-or-replace a columnar block: one page-granular arena
    /// copy (when the view is contiguous), one reserved extension of the
    /// payload column, one bulk id bind. The resulting state is
    /// row-for-row identical to calling [`Self::upsert`] with each of the
    /// block's points in view order. Returns the offset of the block's
    /// first row.
    pub fn upsert_block(&mut self, block: &PointBlock) -> VqResult<u32> {
        if self.sealed {
            return Err(VqError::InvalidRequest("segment is sealed".into()));
        }
        let first = self.arena.len() as u32;
        if block.is_empty() {
            return Ok(first);
        }
        if block.dim() != self.dim() {
            return Err(VqError::DimensionMismatch {
                expected: self.dim(),
                got: block.dim(),
            });
        }
        match block.as_contiguous() {
            Some(slab) => {
                self.arena.extend_from_slab(slab)?;
            }
            None => {
                for i in 0..block.len() {
                    self.arena.push(block.vector(i))?;
                }
            }
        }
        let mut ids = Vec::with_capacity(block.len());
        for i in 0..block.len() {
            let offset = first + i as u32;
            let payload = block.payload(i);
            self.payload_index.insert(offset, payload);
            let pay_offset = self.payloads.push(payload.clone());
            debug_assert_eq!(offset, pay_offset);
            ids.push(block.id(i));
        }
        let bound_first = self.ids.bind_block(&ids)?;
        debug_assert_eq!(first, bound_first);
        Ok(first)
    }

    /// Normalize the stored vectors at offsets `[first, first + n)` in
    /// place. The cosine ingest path bulk-copies raw block slabs and then
    /// fixes them up here with the same kernel the per-point path applies
    /// before insertion, so the resulting bits are identical.
    pub fn normalize_range(&mut self, first: u32, n: usize) -> VqResult<()> {
        if self.sealed {
            return Err(VqError::InvalidRequest("segment is sealed".into()));
        }
        for offset in first..first + n as u32 {
            vq_core::vector::normalize_in_place(self.arena.vector_mut(offset)?);
        }
        Ok(())
    }

    /// The inverted payload index (prefiltered search).
    pub fn payload_index(&self) -> &PayloadIndex {
        &self.payload_index
    }

    /// Delete a point by id. Allowed on sealed segments too: a tombstone
    /// does not grow storage, so sealing (which freezes the vector arena)
    /// does not block it.
    pub fn delete(&mut self, id: PointId) -> VqResult<()> {
        self.ids.delete(id)?;
        Ok(())
    }

    /// Apply a logical WAL record (live path and replay share this).
    pub fn apply(&mut self, record: WalRecord) -> VqResult<()> {
        match record {
            WalRecord::Upsert(p) => self.upsert(p),
            WalRecord::UpsertBlock(b) => self.upsert_block(&b).map(|_| ()),
            WalRecord::Delete(id) => self.delete(id),
            // Segment-lifecycle markers are interpreted a level up (the
            // shard); storage ignores them.
            WalRecord::SealSegment { .. } | WalRecord::IndexBuilt { .. } => Ok(()),
        }
    }

    /// Fetch a live point by id.
    pub fn get(&self, id: PointId) -> Option<Point> {
        let offset = self.ids.offset_of(id)?;
        Some(Point::with_payload(
            id,
            self.arena.get(offset).to_vec(),
            self.payloads.get(offset).clone(),
        ))
    }

    /// Payload at a storage offset (for filters during search).
    pub fn payload_at(&self, offset: u32) -> &Payload {
        self.payloads.get(offset)
    }

    /// Id at a storage offset.
    pub fn id_at(&self, offset: u32) -> Option<PointId> {
        self.ids.id_at(offset)
    }

    /// Whether the offset holds the live copy of its point.
    pub fn is_live(&self, offset: u32) -> bool {
        self.ids.is_live(offset)
    }

    /// The vector arena (the [`vq_index::VectorSource`] indexes build over).
    pub fn arena(&self) -> &PagedArena {
        &self.arena
    }

    /// Iterate live points (id order = offset order).
    pub fn iter_live(&self) -> impl Iterator<Item = (PointId, u32)> + '_ {
        self.ids.iter_live()
    }

    /// Serialize to a snapshot.
    pub fn snapshot(&self) -> SegmentSnapshot {
        SegmentSnapshot {
            dim: self.dim(),
            sealed: self.sealed,
            vectors: self.arena.to_flat(),
            ids: self.ids.export(),
            payloads: self.payloads.export().to_vec(),
        }
    }

    /// Restore from a snapshot.
    pub fn restore(snapshot: &SegmentSnapshot) -> VqResult<Self> {
        let arena = PagedArena::from_flat(snapshot.dim, &snapshot.vectors)?;
        let ids = IdTracker::import(&snapshot.ids)?;
        if ids.total_offsets() != arena.len() || snapshot.payloads.len() != arena.len() {
            return Err(VqError::Corruption(format!(
                "snapshot column mismatch: {} vectors, {} ids, {} payloads",
                arena.len(),
                ids.total_offsets(),
                snapshot.payloads.len()
            )));
        }
        // The inverted index is derived data: rebuild it from the column.
        let mut payload_index = PayloadIndex::new();
        for (offset, payload) in snapshot.payloads.iter().enumerate() {
            payload_index.insert(offset as u32, payload);
        }
        Ok(SegmentStore {
            arena,
            ids,
            payloads: PayloadStore::import(snapshot.payloads.clone()),
            payload_index,
            sealed: snapshot.sealed,
        })
    }
}

/// Serialized form of a [`SegmentStore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentSnapshot {
    /// Vector dimensionality.
    pub dim: usize,
    /// Seal state.
    pub sealed: bool,
    /// Flat vector blob, offset-major.
    pub vectors: Vec<f32>,
    /// Id tracker rows `(id, offset, live, version)`.
    pub ids: Vec<(PointId, u32, bool, u64)>,
    /// Payload column in offset order.
    pub payloads: Vec<Payload>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Wal;

    fn point(id: PointId, x: f32) -> Point {
        Point::with_payload(
            id,
            vec![x, x + 1.0],
            Payload::from_pairs([("x", x as f64)]),
        )
    }

    #[test]
    fn upsert_get_delete() {
        let mut s = SegmentStore::new(2);
        s.upsert(point(1, 0.0)).unwrap();
        s.upsert(point(2, 5.0)).unwrap();
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.get(1).unwrap().vector, vec![0.0, 1.0]);
        s.delete(1).unwrap();
        assert_eq!(s.get(1), None);
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.total_offsets(), 2);
    }

    #[test]
    fn upsert_replaces_vector() {
        let mut s = SegmentStore::new(2);
        s.upsert(point(1, 0.0)).unwrap();
        s.upsert(point(1, 9.0)).unwrap();
        assert_eq!(s.get(1).unwrap().vector, vec![9.0, 10.0]);
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.total_offsets(), 2);
        assert!(s.tombstone_ratio() > 0.0);
    }

    #[test]
    fn sealed_rejects_upserts_but_allows_deletes() {
        let mut s = SegmentStore::new(2);
        s.upsert(point(1, 0.0)).unwrap();
        s.seal();
        assert!(s.is_sealed());
        assert!(s.upsert(point(2, 1.0)).is_err());
        assert!(s.get(1).is_some(), "reads still work");
        s.delete(1).unwrap();
        assert_eq!(s.get(1), None, "tombstoning a sealed segment is allowed");
    }

    #[test]
    fn upsert_block_matches_per_point_upserts() {
        let points: Vec<Point> = (0..10).map(|i| point(i, i as f32)).collect();
        // Include an in-block upsert (duplicate id) to exercise tombstones.
        let mut points = points;
        points.push(point(3, 99.0));
        let block = vq_core::PointBlock::from_points(&points).unwrap();

        let mut via_block = SegmentStore::new(2);
        via_block.upsert(point(3, -1.0)).unwrap(); // pre-existing id 3
        assert_eq!(via_block.upsert_block(&block).unwrap(), 1);

        let mut via_points = SegmentStore::new(2);
        via_points.upsert(point(3, -1.0)).unwrap();
        for p in &points {
            via_points.upsert(p.clone()).unwrap();
        }

        let a = via_block.snapshot();
        let b = via_points.snapshot();
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.payloads, b.payloads);
        assert_eq!(via_block.get(3).unwrap().vector, vec![99.0, 100.0]);
    }

    #[test]
    fn upsert_block_gather_view_and_errors() {
        let points: Vec<Point> = (0..6).map(|i| point(i, i as f32)).collect();
        let block = vq_core::PointBlock::from_points(&points).unwrap();
        let mut s = SegmentStore::new(2);
        // Gather view takes the non-contiguous fallback path.
        s.upsert_block(&block.select(&[4, 0, 2])).unwrap();
        assert_eq!(s.live_count(), 3);
        assert_eq!(s.get(4).unwrap().vector, vec![4.0, 5.0]);
        assert_eq!(s.id_at(0), Some(4));
        // Wrong dimensionality is all-or-nothing.
        let bad = vq_core::PointBlock::from_points(&[Point::new(9, vec![0.0; 3])]).unwrap();
        assert!(matches!(
            s.upsert_block(&bad),
            Err(VqError::DimensionMismatch { expected: 2, got: 3 })
        ));
        assert_eq!(s.total_offsets(), 3, "failed block must not grow columns");
        // Sealed segments reject blocks like they reject points.
        s.seal();
        assert!(s.upsert_block(&block).is_err());
        // Empty blocks are a no-op even with a foreign dim.
        let mut open = SegmentStore::new(2);
        let empty = vq_core::PointBlock::from_points(&[]).unwrap();
        assert_eq!(open.upsert_block(&empty).unwrap(), 0);
        assert_eq!(open.total_offsets(), 0);
    }

    #[test]
    fn normalize_range_matches_pre_normalized_ingest() {
        let raw = vec![
            Point::new(1, vec![3.0, 4.0]),
            Point::new(2, vec![0.0, 0.0]), // zero vector stays untouched
            Point::new(3, vec![-5.0, 12.0]),
        ];
        // Reference: normalize each vector, then upsert per point.
        let mut reference = SegmentStore::new(2);
        for p in &raw {
            let mut q = p.clone();
            vq_core::vector::normalize_in_place(&mut q.vector);
            reference.upsert(q).unwrap();
        }
        // Block path: bulk copy raw slab, then fix up in place.
        let mut bulk = SegmentStore::new(2);
        let block = vq_core::PointBlock::from_points(&raw).unwrap();
        let first = bulk.upsert_block(&block).unwrap();
        bulk.normalize_range(first, block.len()).unwrap();
        assert_eq!(bulk.snapshot().vectors, reference.snapshot().vectors);
        assert!(bulk.normalize_range(2, 5).is_err(), "range past end");
    }

    #[test]
    fn block_replay_reconstructs_state() {
        let points: Vec<Point> = (0..4).map(|i| point(i, i as f32)).collect();
        let block = vq_core::PointBlock::from_points(&points).unwrap();
        let mut wal = Wal::in_memory();
        let mut live = SegmentStore::new(2);
        for rec in [
            WalRecord::UpsertBlock(block),
            WalRecord::Delete(2),
            WalRecord::Upsert(point(7, 9.0)),
        ] {
            wal.append(&rec).unwrap();
            live.apply(rec).unwrap();
        }
        let mut recovered = SegmentStore::new(2);
        for rec in wal.replay().unwrap() {
            recovered.apply(rec).unwrap();
        }
        let a = recovered.snapshot();
        let b = live.snapshot();
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.payloads, b.payloads);
        assert_eq!(recovered.get(2), None);
        assert_eq!(recovered.live_count(), 4);
    }

    #[test]
    fn wal_replay_reconstructs_state() {
        let mut wal = Wal::in_memory();
        let mut live = SegmentStore::new(2);
        for rec in [
            WalRecord::Upsert(point(1, 0.0)),
            WalRecord::Upsert(point(2, 1.0)),
            WalRecord::Delete(1),
            WalRecord::Upsert(point(3, 2.0)),
            WalRecord::Upsert(point(2, 7.0)),
        ] {
            wal.append(&rec).unwrap();
            live.apply(rec).unwrap();
        }
        // "Crash" and recover from the log alone.
        let mut recovered = SegmentStore::new(2);
        for rec in wal.replay().unwrap() {
            recovered.apply(rec).unwrap();
        }
        assert_eq!(recovered.live_count(), live.live_count());
        assert_eq!(recovered.get(1), live.get(1));
        assert_eq!(recovered.get(2), live.get(2));
        assert_eq!(recovered.get(3), live.get(3));
        assert_eq!(recovered.get(2).unwrap().vector, vec![7.0, 8.0]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = SegmentStore::new(2);
        s.upsert(point(1, 0.0)).unwrap();
        s.upsert(point(2, 1.0)).unwrap();
        s.delete(2).unwrap();
        s.upsert(point(1, 4.0)).unwrap();
        s.seal();
        let snap = s.snapshot();
        let r = SegmentStore::restore(&snap).unwrap();
        assert_eq!(r.live_count(), 1);
        assert_eq!(r.get(1).unwrap().vector, vec![4.0, 5.0]);
        assert_eq!(r.get(2), None);
        assert!(r.is_sealed());
        assert_eq!(r.total_offsets(), 3);
    }

    #[test]
    fn snapshot_is_serde_serializable() {
        let mut s = SegmentStore::new(1);
        s.upsert(Point::new(1, vec![0.5])).unwrap();
        let json = serde_json::to_string(&s.snapshot()).unwrap();
        let snap: SegmentSnapshot = serde_json::from_str(&json).unwrap();
        let r = SegmentStore::restore(&snap).unwrap();
        assert_eq!(r.get(1).unwrap().vector, vec![0.5]);
    }

    #[test]
    fn restore_rejects_column_mismatch() {
        let mut s = SegmentStore::new(1);
        s.upsert(Point::new(1, vec![0.5])).unwrap();
        let mut snap = s.snapshot();
        snap.payloads.clear();
        assert!(matches!(
            SegmentStore::restore(&snap),
            Err(VqError::Corruption(_))
        ));
    }

    #[test]
    fn dimension_mismatch_surfaces() {
        let mut s = SegmentStore::new(3);
        assert!(matches!(
            s.upsert(Point::new(1, vec![0.0; 2])),
            Err(VqError::DimensionMismatch { .. })
        ));
        // Failed upsert must not corrupt column lockstep.
        assert_eq!(s.total_offsets(), 0);
        s.upsert(Point::new(1, vec![0.0; 3])).unwrap();
        assert_eq!(s.live_count(), 1);
    }

    #[test]
    fn offset_level_accessors() {
        let mut s = SegmentStore::new(1);
        s.upsert(point_with_payload(9)).unwrap();
        assert_eq!(s.id_at(0), Some(9));
        assert!(s.is_live(0));
        assert_eq!(
            s.payload_at(0).get("tag"),
            Some(&vq_core::PayloadValue::Str("t".into()))
        );
    }

    fn point_with_payload(id: PointId) -> Point {
        Point::with_payload(id, vec![1.0], Payload::from_pairs([("tag", "t")]))
    }
}
