//! Demand-paged full-precision vector tier.
//!
//! The memory-hierarchy half of the filter-then-rerank split: PQ codes
//! stay resident (≈ `m` bytes per vector) and full-precision vectors are
//! spilled to a [`TierBackend`], re-read on demand only for the top-`k·α`
//! rerank survivors. This is what lets the paper's ~80 GB workload run
//! live on a laptop-class memory budget instead of in the simulator.
//!
//! ## Why not mmap
//!
//! A classic implementation would `mmap` the vector file and let the
//! kernel page it. `vq` deliberately pages in user space instead —
//! positional reads into a bounded page cache — for two reasons:
//!
//! 1. **No new dependencies.** There is no `memmap`/`libc` in the tree,
//!    and portable `std` has no mmap. Positional reads work everywhere a
//!    `File` does.
//! 2. **Exact accounting.** The whole point of the tier is a measurable
//!    resident-bytes budget; with mmap the resident set is an opaque
//!    kernel decision, while an explicit cache makes
//!    [`FullPrecisionTier::resident_bytes`] a hard number the repro
//!    harness can assert on.
//!
//! Where a file tier is unavailable (diskless test rigs, the in-memory
//! cluster simulator), [`SharedTierBackend`] provides the same interface
//! over a shared heap buffer — the same fallback shape the WAL uses.
//!
//! Rerank reads arrive in ascending offset order (the rerank stage sorts
//! its candidates), so consecutive faults hit consecutive pages and the
//! cache behaves like a small read-ahead window, not a random-access LRU
//! under churn.

use parking_lot::Mutex;
use std::collections::HashMap;
use vq_core::{VqError, VqResult};
use vq_index::rerank::RerankSource;
use vq_index::source::VectorSource;

/// Byte store a [`FullPrecisionTier`] spills vectors to.
///
/// Mirrors [`crate::wal::WalBackend`]'s file/shared split, but the access
/// pattern is positional random read instead of append/replay.
pub trait TierBackend: Send + Sync {
    /// Total stored bytes.
    fn len(&self) -> u64;
    /// Whether nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Append raw bytes at the end of the store.
    fn append(&mut self, data: &[u8]) -> VqResult<()>;
    /// Fill `out` with the bytes at `offset..offset + out.len()`.
    fn read_at(&self, offset: u64, out: &mut [u8]) -> VqResult<()>;
}

/// Heap-backed tier storage shared across clones (the mmap-unavailable
/// fallback, and the backend the in-memory cluster simulator uses).
#[derive(Debug, Clone, Default)]
pub struct SharedTierBackend {
    data: std::sync::Arc<Mutex<Vec<u8>>>,
}

impl SharedTierBackend {
    /// Empty shared backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TierBackend for SharedTierBackend {
    fn len(&self) -> u64 {
        self.data.lock().len() as u64
    }
    fn append(&mut self, data: &[u8]) -> VqResult<()> {
        self.data.lock().extend_from_slice(data);
        Ok(())
    }
    fn read_at(&self, offset: u64, out: &mut [u8]) -> VqResult<()> {
        let buf = self.data.lock();
        let start = offset as usize;
        let end = start + out.len();
        if end > buf.len() {
            return Err(VqError::Corruption(format!(
                "tier read {start}..{end} past end {}",
                buf.len()
            )));
        }
        out.copy_from_slice(&buf[start..end]);
        Ok(())
    }
}

/// File-backed tier storage: buffered appends at build time, positional
/// reads at query time (seek + read under a lock — portable `std`, no
/// mmap; see the module docs for why).
#[derive(Debug)]
pub struct FileTierBackend {
    file: Mutex<std::fs::File>,
    path: std::path::PathBuf,
    len: u64,
    /// Unlink the file on drop (temp-file tiers owned by a segment).
    unlink_on_drop: bool,
}

impl FileTierBackend {
    /// Open (creating or extending) the tier file at `path`.
    pub fn open(path: impl Into<std::path::PathBuf>) -> VqResult<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| VqError::Corruption(format!("open tier {path:?}: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| VqError::Corruption(format!("stat tier: {e}")))?
            .len();
        Ok(FileTierBackend {
            file: Mutex::new(file),
            path,
            len,
            unlink_on_drop: false,
        })
    }

    /// Create a fresh process-unique temp-file backend, unlinked when the
    /// backend drops. This is what `TierKind::TempFile` collections use.
    pub fn create_temp(tag: &str) -> VqResult<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "vq-tier-{tag}-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // A stale file from a crashed run must not leak into this tier.
        let _ = std::fs::remove_file(&path);
        let mut backend = Self::open(path)?;
        backend.unlink_on_drop = true;
        Ok(backend)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for FileTierBackend {
    fn drop(&mut self) {
        if self.unlink_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl TierBackend for FileTierBackend {
    fn len(&self) -> u64 {
        self.len
    }

    fn append(&mut self, data: &[u8]) -> VqResult<()> {
        use std::io::Write;
        self.file
            .lock()
            .write_all(data)
            .map_err(|e| VqError::Corruption(format!("append tier: {e}")))?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn read_at(&self, offset: u64, out: &mut [u8]) -> VqResult<()> {
        use std::io::{Read, Seek, SeekFrom};
        if offset + out.len() as u64 > self.len {
            return Err(VqError::Corruption(format!(
                "tier read {offset}+{} past end {}",
                out.len(),
                self.len
            )));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| VqError::Corruption(format!("seek tier: {e}")))?;
        file.read_exact(out)
            .map_err(|e| VqError::Corruption(format!("read tier: {e}")))
    }
}

/// Paging knobs for a [`FullPrecisionTier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Vectors per cache page. Larger pages amortize read syscalls for
    /// the (sorted, mostly-sequential) rerank access pattern.
    pub vectors_per_page: usize,
    /// Resident-page budget; least-recently-used pages evict past it.
    pub max_resident_pages: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            vectors_per_page: 256,
            max_resident_pages: 8,
        }
    }
}

/// LRU page cache state (everything behind one lock: fault handling must
/// atomically read-through and evict).
struct PageCache {
    /// page id → (raw page bytes, last-touch tick).
    pages: HashMap<u32, (Vec<u8>, u64)>,
    tick: u64,
    faults: u64,
}

/// The demand-paged full-precision vector tier.
///
/// Vectors live in a [`TierBackend`] as little-endian `f32` rows; reads
/// go through a bounded LRU page cache so resident memory is
/// `O(max_resident_pages × vectors_per_page × dim)` regardless of how
/// many vectors are stored. Implements
/// [`RerankSource`], so it plugs directly into the exact-rerank stage.
pub struct FullPrecisionTier {
    backend: Box<dyn TierBackend>,
    config: TierConfig,
    dim: usize,
    n: usize,
    cache: Mutex<PageCache>,
}

impl FullPrecisionTier {
    /// Tier over an empty (or matching pre-filled) backend.
    ///
    /// `n` is derived from the backend length, so reopening a file tier
    /// written by an earlier run recovers its contents.
    pub fn new(backend: Box<dyn TierBackend>, dim: usize, config: TierConfig) -> VqResult<Self> {
        assert!(dim > 0, "tier dim must be positive");
        assert!(config.vectors_per_page > 0 && config.max_resident_pages > 0);
        let row = 4 * dim as u64;
        let len = backend.len();
        if len % row != 0 {
            return Err(VqError::Corruption(format!(
                "tier backend length {len} not a multiple of row size {row}"
            )));
        }
        Ok(FullPrecisionTier {
            backend,
            config,
            dim,
            n: (len / row) as usize,
            cache: Mutex::new(PageCache {
                pages: HashMap::new(),
                tick: 0,
                faults: 0,
            }),
        })
    }

    /// Build a tier by spilling every vector of `source` to `backend`.
    pub fn from_source<S: VectorSource>(
        source: &S,
        mut backend: Box<dyn TierBackend>,
        config: TierConfig,
    ) -> VqResult<Self> {
        let dim = source.dim();
        let mut buf = Vec::with_capacity(4 * dim * config.vectors_per_page);
        for o in 0..source.len() as u32 {
            for &x in source.vector(o) {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            if buf.len() >= 4 * dim * config.vectors_per_page {
                backend.append(&buf)?;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            backend.append(&buf)?;
        }
        let mut tier = Self::new(backend, dim, config)?;
        tier.n = source.len();
        Ok(tier)
    }

    /// Append one vector (must match `dim`).
    pub fn append(&mut self, v: &[f32]) -> VqResult<()> {
        assert_eq!(v.len(), self.dim, "tier append dim mismatch");
        let mut buf = Vec::with_capacity(4 * self.dim);
        for &x in v {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        self.backend.append(&buf)?;
        self.n += 1;
        // The tail page is now stale in cache; drop it so the next read
        // faults the extended version back in.
        let page = ((self.n - 1) / self.config.vectors_per_page) as u32;
        self.cache.lock().pages.remove(&page);
        Ok(())
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total full-precision bytes in the backend (what would be resident
    /// without the tier).
    pub fn full_bytes(&self) -> u64 {
        self.backend.len()
    }

    /// Bytes currently held by the page cache — the tier's actual
    /// resident footprint.
    pub fn resident_bytes(&self) -> usize {
        self.cache
            .lock()
            .pages
            .values()
            .map(|(p, _)| p.len())
            .sum()
    }

    /// Page faults served so far (also counted under `tier.page_faults`).
    pub fn page_faults(&self) -> u64 {
        self.cache.lock().faults
    }

    /// Copy vector `offset` into `out` (`out.len() == dim`), faulting its
    /// page in (and evicting past the budget) if needed.
    pub fn read_into(&self, offset: u32, out: &mut [f32]) {
        assert!((offset as usize) < self.n, "tier offset {offset} out of range");
        assert_eq!(out.len(), self.dim);
        let vpp = self.config.vectors_per_page;
        let page = offset as usize / vpp;
        let slot = offset as usize % vpp;
        let row = 4 * self.dim;

        let mut cache = self.cache.lock();
        cache.tick += 1;
        let tick = cache.tick;
        if !cache.pages.contains_key(&(page as u32)) {
            // Fault: read the (possibly short, at the tail) page through.
            let first = page * vpp;
            let rows = vpp.min(self.n - first);
            let mut bytes = vec![0u8; rows * row];
            self.backend
                .read_at((first * row) as u64, &mut bytes)
                .expect("tier backend read failed");
            cache.faults += 1;
            vq_obs::count("tier.page_faults", 1);
            cache.pages.insert(page as u32, (bytes, tick));
            while cache.pages.len() > self.config.max_resident_pages {
                let oldest = cache
                    .pages
                    .iter()
                    .min_by_key(|(_, (_, t))| *t)
                    .map(|(&p, _)| p)
                    .expect("non-empty cache");
                cache.pages.remove(&oldest);
            }
        }
        let (bytes, touched) = cache.pages.get_mut(&(page as u32)).expect("page resident");
        *touched = tick;
        let start = slot * row;
        for (i, o) in out.iter_mut().enumerate() {
            let b = &bytes[start + 4 * i..start + 4 * i + 4];
            *o = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
    }
}

impl RerankSource for FullPrecisionTier {
    fn dim(&self) -> usize {
        self.dim
    }

    fn read_vector(&self, offset: u32, out: &mut [f32]) {
        self.read_into(offset, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vq_index::source::DenseVectors;

    fn source(n: usize, dim: usize) -> DenseVectors {
        let mut s = DenseVectors::new(dim);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32 * 0.25).collect();
            s.push(&v);
        }
        s
    }

    fn check_roundtrip(tier: &FullPrecisionTier, s: &DenseVectors) {
        let mut buf = vec![0.0f32; s.dim()];
        // Deliberately non-sequential order to exercise eviction + refault.
        for o in (0..s.len() as u32).rev().chain(0..s.len() as u32) {
            tier.read_into(o, &mut buf);
            assert_eq!(&buf[..], s.vector(o), "offset {o}");
        }
    }

    #[test]
    fn shared_backend_roundtrip_with_eviction() {
        let s = source(100, 6);
        let cfg = TierConfig {
            vectors_per_page: 8,
            max_resident_pages: 2,
        };
        let tier =
            FullPrecisionTier::from_source(&s, Box::new(SharedTierBackend::new()), cfg).unwrap();
        assert_eq!(tier.len(), 100);
        assert_eq!(tier.full_bytes(), 100 * 6 * 4);
        check_roundtrip(&tier, &s);
        // Budget: never more than 2 pages × 8 vectors × 24 B resident.
        assert!(tier.resident_bytes() <= 2 * 8 * 6 * 4);
        assert!(tier.page_faults() >= 13, "must refault under a 2-page budget");
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let s = source(50, 4);
        let backend = FileTierBackend::create_temp("roundtrip").unwrap();
        let path = backend.path().to_path_buf();
        let tier =
            FullPrecisionTier::from_source(&s, Box::new(backend), TierConfig::default()).unwrap();
        check_roundtrip(&tier, &s);

        // Reopen the same file: n recovers from the backend length.
        let reopened = FullPrecisionTier::new(
            Box::new(FileTierBackend::open(&path).unwrap()),
            4,
            TierConfig::default(),
        )
        .unwrap();
        assert_eq!(reopened.len(), 50);
        check_roundtrip(&reopened, &s);
        drop(tier);
    }

    #[test]
    fn temp_file_unlinked_on_drop() {
        let backend = FileTierBackend::create_temp("unlink").unwrap();
        let path = backend.path().to_path_buf();
        let mut tier = FullPrecisionTier::new(Box::new(backend), 2, TierConfig::default()).unwrap();
        tier.append(&[1.0, 2.0]).unwrap();
        assert!(path.exists());
        drop(tier);
        assert!(!path.exists(), "temp tier file must be unlinked");
    }

    #[test]
    fn append_invalidates_tail_page() {
        let mut tier = FullPrecisionTier::new(
            Box::new(SharedTierBackend::new()),
            2,
            TierConfig {
                vectors_per_page: 4,
                max_resident_pages: 2,
            },
        )
        .unwrap();
        tier.append(&[1.0, 2.0]).unwrap();
        let mut buf = [0.0f32; 2];
        tier.read_into(0, &mut buf); // tail page now cached
        tier.append(&[3.0, 4.0]).unwrap();
        tier.read_into(1, &mut buf);
        assert_eq!(buf, [3.0, 4.0]);
    }

    #[test]
    fn resident_reduction_vs_full_precision() {
        // The acceptance-criteria shape at miniature scale: a bounded
        // cache keeps resident bytes a small fraction of the spilled set.
        let s = source(1024, 8);
        let cfg = TierConfig {
            vectors_per_page: 32,
            max_resident_pages: 4,
        };
        let tier =
            FullPrecisionTier::from_source(&s, Box::new(SharedTierBackend::new()), cfg).unwrap();
        let mut buf = vec![0.0f32; 8];
        for o in 0..1024u32 {
            tier.read_into(o, &mut buf);
        }
        let full = tier.full_bytes() as usize;
        let resident = tier.resident_bytes();
        assert!(
            resident * 4 <= full,
            "resident {resident} should be ≤ 1/4 of full {full}"
        );
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut backend = SharedTierBackend::new();
        backend.append(&[0u8; 10]).unwrap(); // not a multiple of 8 (dim 2)
        assert!(FullPrecisionTier::new(Box::new(backend), 2, TierConfig::default()).is_err());
    }

    #[test]
    fn out_of_range_read_is_error() {
        let backend = SharedTierBackend::new();
        let mut out = [0u8; 4];
        assert!(backend.read_at(0, &mut out).is_err());
    }
}
