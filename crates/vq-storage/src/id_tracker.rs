//! Point-id ↔ offset tracking with upsert versions and tombstones.
//!
//! Storage addresses vectors by dense `u32` offsets; users address points
//! by [`PointId`]. The tracker owns the bidirectional mapping plus the
//! pieces of mutation semantics that live at this level:
//!
//! * **upsert** — re-inserting an existing id points it at a new offset
//!   and tombstones the old one (append-only storage never overwrites a
//!   sealed offset);
//! * **delete** — tombstones the current offset;
//! * **versions** — each id carries a monotonically increasing version so
//!   replicated shards can reconcile out-of-order applies.

use std::collections::HashMap;
use vq_core::{PointId, VqError, VqResult};

/// Per-offset reverse entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OffsetEntry {
    id: PointId,
    live: bool,
}

/// The id ↔ offset bimap of one segment.
#[derive(Debug, Default, Clone)]
pub struct IdTracker {
    forward: HashMap<PointId, (u32, u64)>, // id -> (offset, version)
    reverse: Vec<OffsetEntry>,             // offset -> entry
    live: usize,
}

impl IdTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-tombstoned) points.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Number of offsets ever allocated (live + tombstoned).
    pub fn total_offsets(&self) -> usize {
        self.reverse.len()
    }

    /// Fraction of allocated offsets that are tombstones — the signal the
    /// optimizer uses to decide a segment is worth vacuuming.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.reverse.is_empty() {
            0.0
        } else {
            1.0 - self.live as f64 / self.reverse.len() as f64
        }
    }

    /// Record that `id` now lives at `offset` (which must be the next
    /// dense offset). Returns the tombstoned previous offset if this was
    /// an upsert of an existing id.
    pub fn bind(&mut self, id: PointId, offset: u32) -> VqResult<Option<u32>> {
        if offset as usize != self.reverse.len() {
            return Err(VqError::Internal(format!(
                "non-dense bind: offset {offset}, expected {}",
                self.reverse.len()
            )));
        }
        self.reverse.push(OffsetEntry { id, live: true });
        self.live += 1;
        match self.forward.insert(id, (offset, 1)) {
            Some((old_offset, old_version)) => {
                self.forward.insert(id, (offset, old_version + 1));
                let old = &mut self.reverse[old_offset as usize];
                if old.live {
                    old.live = false;
                    self.live -= 1;
                }
                Ok(Some(old_offset))
            }
            None => Ok(None),
        }
    }

    /// Bulk-bind a block of ids to the next `ids.len()` dense offsets, in
    /// order, reserving both columns up front (one growth decision per
    /// block instead of per point). Returns the first bound offset.
    ///
    /// Upsert semantics — tombstoning a previous offset, version bumps,
    /// duplicate ids *within* the block — are exactly those of calling
    /// [`Self::bind`] once per id in order.
    pub fn bind_block(&mut self, ids: &[PointId]) -> VqResult<u32> {
        let first = self.reverse.len() as u32;
        self.reverse.reserve(ids.len());
        self.forward.reserve(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            self.bind(id, first + i as u32)?;
        }
        Ok(first)
    }

    /// Current offset of a live id.
    pub fn offset_of(&self, id: PointId) -> Option<u32> {
        let &(offset, _) = self.forward.get(&id)?;
        self.reverse[offset as usize].live.then_some(offset)
    }

    /// Current version of an id (present even if deleted).
    pub fn version_of(&self, id: PointId) -> Option<u64> {
        self.forward.get(&id).map(|&(_, v)| v)
    }

    /// The id stored at `offset`, live or not.
    pub fn id_at(&self, offset: u32) -> Option<PointId> {
        self.reverse.get(offset as usize).map(|e| e.id)
    }

    /// Whether `offset` holds the live copy of its id.
    #[inline]
    pub fn is_live(&self, offset: u32) -> bool {
        self.reverse
            .get(offset as usize)
            .is_some_and(|e| e.live)
    }

    /// Tombstone an id. Returns its former offset.
    pub fn delete(&mut self, id: PointId) -> VqResult<u32> {
        let &(offset, version) = self
            .forward
            .get(&id)
            .ok_or(VqError::PointNotFound(id))?;
        let entry = &mut self.reverse[offset as usize];
        if !entry.live {
            return Err(VqError::PointNotFound(id));
        }
        entry.live = false;
        self.live -= 1;
        self.forward.insert(id, (offset, version + 1));
        Ok(offset)
    }

    /// Iterate live `(id, offset)` pairs in offset order.
    pub fn iter_live(&self) -> impl Iterator<Item = (PointId, u32)> + '_ {
        self.reverse
            .iter()
            .enumerate()
            .filter(|(_, e)| e.live)
            .map(|(o, e)| (e.id, o as u32))
    }

    /// Export `(id, offset, live, version)` rows for snapshots.
    pub fn export(&self) -> Vec<(PointId, u32, bool, u64)> {
        self.reverse
            .iter()
            .enumerate()
            .map(|(o, e)| {
                let version = self.forward.get(&e.id).map(|&(_, v)| v).unwrap_or(1);
                (e.id, o as u32, e.live, version)
            })
            .collect()
    }

    /// Rebuild from exported rows (offsets must be dense and ordered).
    pub fn import(rows: &[(PointId, u32, bool, u64)]) -> VqResult<Self> {
        let mut t = IdTracker::new();
        for &(id, offset, live, version) in rows {
            if offset as usize != t.reverse.len() {
                return Err(VqError::Corruption(format!(
                    "id tracker rows not dense at offset {offset}"
                )));
            }
            t.reverse.push(OffsetEntry { id, live });
            if live {
                t.live += 1;
                t.forward.insert(id, (offset, version));
            } else {
                // Keep version info for deleted ids too, unless a newer
                // live entry already claimed the id.
                t.forward.entry(id).or_insert((offset, version));
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut t = IdTracker::new();
        assert_eq!(t.bind(100, 0).unwrap(), None);
        assert_eq!(t.bind(200, 1).unwrap(), None);
        assert_eq!(t.offset_of(100), Some(0));
        assert_eq!(t.offset_of(200), Some(1));
        assert_eq!(t.id_at(1), Some(200));
        assert_eq!(t.live_count(), 2);
    }

    #[test]
    fn bind_requires_dense_offsets() {
        let mut t = IdTracker::new();
        assert!(t.bind(1, 5).is_err());
    }

    #[test]
    fn upsert_tombstones_old_offset() {
        let mut t = IdTracker::new();
        t.bind(7, 0).unwrap();
        let old = t.bind(7, 1).unwrap();
        assert_eq!(old, Some(0));
        assert_eq!(t.offset_of(7), Some(1));
        assert!(!t.is_live(0));
        assert!(t.is_live(1));
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.version_of(7), Some(2));
    }

    #[test]
    fn bind_block_matches_repeated_bind() {
        let mut bulk = IdTracker::new();
        let mut reference = IdTracker::new();
        reference.bind(5, 0).unwrap();
        bulk.bind(5, 0).unwrap();
        // Block containing an upsert of 5 and an internal duplicate of 9.
        let ids = [7u64, 5, 9, 9];
        assert_eq!(bulk.bind_block(&ids).unwrap(), 1);
        for (i, &id) in ids.iter().enumerate() {
            reference.bind(id, 1 + i as u32).unwrap();
        }
        assert_eq!(bulk.export(), reference.export());
        assert_eq!(bulk.live_count(), reference.live_count());
        assert_eq!(bulk.offset_of(9), Some(4));
        assert_eq!(bulk.version_of(9), Some(2));
        assert_eq!(bulk.offset_of(5), Some(2));
        assert!(!bulk.is_live(0));
    }

    #[test]
    fn delete_and_tombstone_ratio() {
        let mut t = IdTracker::new();
        t.bind(1, 0).unwrap();
        t.bind(2, 1).unwrap();
        assert_eq!(t.delete(1).unwrap(), 0);
        assert_eq!(t.offset_of(1), None);
        assert_eq!(t.live_count(), 1);
        assert!((t.tombstone_ratio() - 0.5).abs() < 1e-9);
        assert!(matches!(t.delete(1), Err(VqError::PointNotFound(1))));
        assert!(matches!(t.delete(99), Err(VqError::PointNotFound(99))));
    }

    #[test]
    fn delete_bumps_version() {
        let mut t = IdTracker::new();
        t.bind(5, 0).unwrap();
        t.delete(5).unwrap();
        assert_eq!(t.version_of(5), Some(2));
        // Re-insert after delete: a new offset, version moves on.
        t.bind(5, 1).unwrap();
        assert_eq!(t.version_of(5), Some(3));
        assert_eq!(t.offset_of(5), Some(1));
    }

    #[test]
    fn iter_live_in_offset_order() {
        let mut t = IdTracker::new();
        t.bind(10, 0).unwrap();
        t.bind(20, 1).unwrap();
        t.bind(30, 2).unwrap();
        t.delete(20).unwrap();
        let live: Vec<_> = t.iter_live().collect();
        assert_eq!(live, vec![(10, 0), (30, 2)]);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut t = IdTracker::new();
        t.bind(1, 0).unwrap();
        t.bind(2, 1).unwrap();
        t.bind(1, 2).unwrap(); // upsert
        t.delete(2).unwrap();
        let rows = t.export();
        let r = IdTracker::import(&rows).unwrap();
        assert_eq!(r.offset_of(1), Some(2));
        assert_eq!(r.offset_of(2), None);
        assert_eq!(r.live_count(), 1);
        assert_eq!(r.total_offsets(), 3);
    }

    #[test]
    fn import_rejects_non_dense() {
        let rows = vec![(1u64, 1u32, true, 1u64)];
        assert!(IdTracker::import(&rows).is_err());
    }
}
