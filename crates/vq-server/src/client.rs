//! Clients for both serving frontends: a minimal HTTP/1.1 client for the
//! REST API and a framed client for the binary protocol. Used by `repro
//! protocol` (the REST-vs-binary ablation) and the integration tests;
//! also a reference for what an external caller speaks.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use vq_collection::SearchRequest;
use vq_core::{Point, PointBlock, ScoredPoint, VqError, VqResult};
use vq_net::wire;

use crate::protocol::{write_message, BinRequest, BinResponse};
use crate::rest::{json_escape, json_f64};

// ---------------------------------------------------------------------------
// REST client
// ---------------------------------------------------------------------------

/// A blocking HTTP client for the Qdrant-compatible REST API, one
/// keep-alive connection.
pub struct RestClient {
    stream: BufReader<TcpStream>,
}

/// A decoded HTTP response.
pub struct RestResponse {
    /// HTTP status code.
    pub status: u16,
    /// Trace id echoed by the server in `x-vq-trace-id`, if any.
    pub trace_id: Option<u64>,
    /// Response body.
    pub body: Vec<u8>,
}

impl RestResponse {
    /// Parse the body as JSON and return the Qdrant envelope's `result`.
    pub fn result(&self) -> VqResult<serde_json::Value> {
        let value = serde_json::from_slice::<serde_json::Value>(&self.body)
            .map_err(|e| VqError::Corruption(format!("REST response not JSON: {e}")))?;
        if self.status != 200 {
            let message = value
                .get("status")
                .and_then(|s| s.get("error"))
                .and_then(|e| e.as_str())
                .unwrap_or("unknown error")
                .to_string();
            return Err(VqError::Network(format!("HTTP {}: {message}", self.status)));
        }
        value
            .get("result")
            .cloned()
            .ok_or_else(|| VqError::Corruption("REST envelope missing `result`".into()))
    }
}

impl RestClient {
    /// Connect to a REST server.
    pub fn connect(addr: std::net::SocketAddr) -> VqResult<RestClient> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| VqError::Network(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        Ok(RestClient {
            stream: BufReader::new(stream),
        })
    }

    /// Issue one request; body `None` sends no Content-Length.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> VqResult<RestResponse> {
        self.request_traced(method, path, body, None)
    }

    /// Issue one request, optionally stamping an `x-vq-trace-id` header
    /// so the server joins the caller's trace (it echoes the id back;
    /// see [`RestResponse::trace_id`]).
    pub fn request_traced(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        trace_id: Option<u64>,
    ) -> VqResult<RestResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: vq\r\n");
        if let Some(id) = trace_id {
            head.push_str(&format!("x-vq-trace-id: {id:016x}\r\n"));
        }
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        let writer = self.stream.get_mut();
        let io_err = |e: std::io::Error| VqError::Network(format!("REST request: {e}"));
        writer.write_all(head.as_bytes()).map_err(io_err)?;
        if let Some(body) = body {
            writer.write_all(body.as_bytes()).map_err(io_err)?;
        }
        writer.flush().map_err(io_err)?;
        self.read_response()
    }

    fn read_response(&mut self) -> VqResult<RestResponse> {
        let net_err = |m: &str| VqError::Network(format!("REST response: {m}"));
        let mut line = String::new();
        self.stream
            .read_line(&mut line)
            .map_err(|e| net_err(&e.to_string()))?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| net_err(&format!("bad status line {line:?}")))?;
        let mut content_length = 0usize;
        let mut trace_id = None;
        loop {
            let mut header = String::new();
            let n = self
                .stream
                .read_line(&mut header)
                .map_err(|e| net_err(&e.to_string()))?;
            if n == 0 {
                return Err(net_err("EOF in headers"));
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| net_err("bad Content-Length"))?;
                } else if name.eq_ignore_ascii_case("x-vq-trace-id") {
                    trace_id = u64::from_str_radix(value.trim(), 16).ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream
            .read_exact(&mut body)
            .map_err(|e| net_err(&e.to_string()))?;
        Ok(RestResponse {
            status,
            trace_id,
            body,
        })
    }

    /// `PUT /collections/{name}` with Qdrant's vectors config.
    pub fn create_collection(&mut self, name: &str, dim: usize, distance: &str) -> VqResult<()> {
        let body =
            format!("{{\"vectors\":{{\"size\":{dim},\"distance\":\"{distance}\"}}}}");
        self.request("PUT", &format!("/collections/{name}"), Some(&body))?
            .result()
            .map(|_| ())
    }

    /// `PUT /collections/{name}/points`.
    pub fn upsert_points(&mut self, name: &str, points: &[Point]) -> VqResult<()> {
        let body = points_body(points);
        self.request(
            "PUT",
            &format!("/collections/{name}/points"),
            Some(&body),
        )?
        .result()
        .map(|_| ())
    }
    /// `POST /collections/{name}/points/search`.
    pub fn search(
        &mut self,
        name: &str,
        request: &SearchRequest,
    ) -> VqResult<Vec<ScoredPoint>> {
        self.search_traced(name, request, None).map(|(hits, _)| hits)
    }

    /// Like [`RestClient::search`], but stamps `trace_id` into the
    /// `x-vq-trace-id` header and returns the id the server echoed —
    /// `Some(id)` proves the server joined (or started) a trace.
    pub fn search_traced(
        &mut self,
        name: &str,
        request: &SearchRequest,
        trace_id: Option<u64>,
    ) -> VqResult<(Vec<ScoredPoint>, Option<u64>)> {
        let mut body = String::from("{\"vector\":[");
        for (i, x) in request.vector.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            json_f64(*x as f64, &mut body);
        }
        body.push_str("],\"limit\":");
        body.push_str(&request.k.to_string());
        if request.with_payload {
            body.push_str(",\"with_payload\":true");
        }
        if let Some(ef) = request.ef {
            body.push_str(&format!(",\"params\":{{\"hnsw_ef\":{ef}}}"));
        }
        body.push('}');
        let response = self.request_traced(
            "POST",
            &format!("/collections/{name}/points/search"),
            Some(&body),
            trace_id,
        )?;
        let echoed = response.trace_id;
        let result = response.result()?;
        let items = result
            .as_array()
            .ok_or_else(|| VqError::Corruption("search result is not an array".into()))?;
        let mut hits = Vec::with_capacity(items.len());
        for item in items.iter() {
            let id = item
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| VqError::Corruption("hit missing id".into()))?;
            let score = item
                .get("score")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| VqError::Corruption("hit missing score".into()))?
                as f32;
            let payload = match item.get("payload").and_then(|p| p.as_object()) {
                Some(object) => {
                    let mut payload = vq_core::Payload::new();
                    for (key, v) in object.iter() {
                        if let Some(s) = v.as_str() {
                            payload.insert(key.clone(), s.to_string());
                        } else if let Some(b) = v.as_bool() {
                            payload.insert(key.clone(), b);
                        } else if let Some(n) = v.as_i64() {
                            payload.insert(key.clone(), n);
                        } else if let Some(f) = v.as_f64() {
                            payload.insert(key.clone(), f);
                        } else if let Some(items) = v.as_array() {
                            let words: Vec<String> = items
                                .iter()
                                .filter_map(|w| w.as_str().map(str::to_string))
                                .collect();
                            payload
                                .0
                                .insert(key.clone(), vq_core::PayloadValue::Keywords(words));
                        }
                    }
                    Some(payload)
                }
                None => None,
            };
            hits.push(ScoredPoint { id, score, payload });
        }
        Ok((hits, echoed))
    }

    /// `GET /healthz`.
    pub fn healthz(&mut self) -> VqResult<bool> {
        Ok(self.request("GET", "/healthz", None)?.status == 200)
    }

    /// `GET /metrics` Prometheus text.
    pub fn metrics(&mut self) -> VqResult<String> {
        let response = self.request("GET", "/metrics", None)?;
        String::from_utf8(response.body)
            .map_err(|_| VqError::Corruption("metrics not UTF-8".into()))
    }
}

/// The JSON body of `PUT /collections/{name}/points` for `points`.
///
/// Public so the REST-vs-binary ablation can weigh the exact bytes the
/// REST path puts on the wire against the binary frame for the same
/// batch.
pub fn points_body(points: &[Point]) -> String {
    let mut body = String::from("{\"points\":[");
    for (i, point) in points.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"id\":");
        body.push_str(&point.id.to_string());
        body.push_str(",\"vector\":[");
        for (j, x) in point.vector.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            json_f64(*x as f64, &mut body);
        }
        body.push(']');
        if !point.payload.is_empty() {
            body.push_str(",\"payload\":{");
            for (j, (key, value)) in point.payload.0.iter().enumerate() {
                if j > 0 {
                    body.push(',');
                }
                json_escape(key, &mut body);
                body.push(':');
                match value {
                    vq_core::PayloadValue::Str(s) => json_escape(s, &mut body),
                    vq_core::PayloadValue::Int(n) => body.push_str(&n.to_string()),
                    vq_core::PayloadValue::Float(f) => json_f64(*f, &mut body),
                    vq_core::PayloadValue::Bool(b) => {
                        body.push_str(if *b { "true" } else { "false" })
                    }
                    vq_core::PayloadValue::Keywords(words) => {
                        body.push('[');
                        for (l, w) in words.iter().enumerate() {
                            if l > 0 {
                                body.push(',');
                            }
                            json_escape(w, &mut body);
                        }
                        body.push(']');
                    }
                }
            }
            body.push('}');
        }
        body.push('}');
    }
    body.push_str("]}");
    body
}

// ---------------------------------------------------------------------------
// Binary client
// ---------------------------------------------------------------------------

/// A blocking client for the framed binary protocol, one persistent
/// connection.
pub struct BinClient {
    stream: TcpStream,
}

impl BinClient {
    /// Connect to a binary-protocol server.
    pub fn connect(addr: std::net::SocketAddr) -> VqResult<BinClient> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| VqError::Network(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        Ok(BinClient { stream })
    }

    /// One framed request/response exchange.
    pub fn request(&mut self, request: &BinRequest) -> VqResult<BinResponse> {
        write_message(&mut self.stream, request)?;
        let payload = wire::read_frame(&mut self.stream)?
            .ok_or_else(|| VqError::Network("server closed the connection".into()))?;
        wire::from_bytes(&payload)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> VqResult<()> {
        match self.request(&BinRequest::Ping)? {
            BinResponse::Pong => Ok(()),
            other => Err(VqError::Network(format!("unexpected reply {other:?}"))),
        }
    }

    /// Upsert a block of points.
    pub fn upsert_block(&mut self, collection: &str, block: &Arc<PointBlock>) -> VqResult<u64> {
        let request = BinRequest::Upsert {
            collection: collection.to_string(),
            block: PointBlock::clone(block),
        };
        match self.request(&request)? {
            BinResponse::Upserted { count } => Ok(count),
            BinResponse::Error { message } => Err(VqError::Network(message)),
            other => Err(VqError::Network(format!("unexpected reply {other:?}"))),
        }
    }

    /// Upsert points (packed into a block client-side).
    pub fn upsert_points(&mut self, collection: &str, points: &[Point]) -> VqResult<u64> {
        let block = Arc::new(PointBlock::from_points(points)?);
        self.upsert_block(collection, &block)
    }

    /// Broadcast–reduce search.
    pub fn search(
        &mut self,
        collection: &str,
        request: &SearchRequest,
    ) -> VqResult<Vec<ScoredPoint>> {
        let request = BinRequest::Search {
            collection: collection.to_string(),
            request: request.clone(),
        };
        match self.request(&request)? {
            BinResponse::Hits { hits } => Ok(hits),
            BinResponse::Error { message } => Err(VqError::Network(message)),
            other => Err(VqError::Network(format!("unexpected reply {other:?}"))),
        }
    }

    /// Live point count.
    pub fn count(&mut self, collection: &str) -> VqResult<u64> {
        let request = BinRequest::Count {
            collection: collection.to_string(),
        };
        match self.request(&request)? {
            BinResponse::Count { count } => Ok(count),
            BinResponse::Error { message } => Err(VqError::Network(message)),
            other => Err(VqError::Network(format!("unexpected reply {other:?}"))),
        }
    }
}
