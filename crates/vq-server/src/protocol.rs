//! The binary hot path: `vbin`-encoded request/response frames over a
//! dedicated TCP port.
//!
//! Each frame is one [`vq_net::wire`] envelope (magic + version + length
//! + CRC) whose payload is a [`BinRequest`] or [`BinResponse`]. Point
//! batches ride as [`PointBlock`]s, so vectors serialize as one
//! contiguous f32 slab instead of per-point JSON arrays — this is the
//! path that makes the REST-vs-binary ablation (`repro protocol`)
//! meaningful.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use vq_collection::SearchRequest;
use vq_core::{PointBlock, ScoredPoint, VqResult};
use vq_net::wire;

use crate::backend::Registry;

/// A request frame on the binary port.
///
/// (No `PartialEq`: `PointBlock` slabs compare by content semantics the
/// block type deliberately doesn't define.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BinRequest {
    /// Liveness probe.
    Ping,
    /// Upsert a columnar block of points.
    Upsert {
        /// Target collection.
        collection: String,
        /// The points, as one contiguous block.
        block: PointBlock,
    },
    /// Broadcast–reduce search.
    Search {
        /// Target collection.
        collection: String,
        /// The query.
        request: SearchRequest,
    },
    /// Live point count.
    Count {
        /// Target collection.
        collection: String,
    },
}

/// A response frame on the binary port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BinResponse {
    /// Liveness answer.
    Pong,
    /// Upsert acknowledged.
    Upserted {
        /// Points written.
        count: u64,
    },
    /// Search results.
    Hits {
        /// Scored points, best first.
        hits: Vec<ScoredPoint>,
    },
    /// Count answer.
    Count {
        /// Live points.
        count: u64,
    },
    /// Any failure, with the error's display text.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Dispatch one decoded request, under a `bin_edge` root span when
/// tracing is installed (the binary port has no headers, so traces
/// always start fresh here).
fn handle(registry: &Registry, request: BinRequest) -> BinResponse {
    let Some(root) = vq_obs::trace_begin_root(None) else {
        return handle_inner(registry, request);
    };
    let scope = vq_obs::TraceScope::enter(root);
    let started = std::time::Instant::now();
    let response = handle_inner(registry, request);
    drop(scope);
    vq_obs::trace_finish(&root, "bin_edge", 0, started.elapsed().as_secs_f64());
    response
}

fn handle_inner(registry: &Registry, request: BinRequest) -> BinResponse {
    vq_obs::count("server.bin_requests", 1);
    let not_found = |name: &str| BinResponse::Error {
        message: format!("collection `{name}` not found"),
    };
    match request {
        BinRequest::Ping => BinResponse::Pong,
        BinRequest::Upsert { collection, block } => match registry.get(&collection) {
            Some(backend) => match backend.upsert_block(Arc::new(block)) {
                Ok(count) => {
                    vq_obs::count("server.bin_points_upserted", count as u64);
                    BinResponse::Upserted {
                        count: count as u64,
                    }
                }
                Err(e) => BinResponse::Error {
                    message: e.to_string(),
                },
            },
            None => not_found(&collection),
        },
        BinRequest::Search {
            collection,
            request,
        } => match registry.get(&collection) {
            Some(backend) => match backend.search(request) {
                Ok(hits) => {
                    vq_obs::count("server.bin_searches", 1);
                    BinResponse::Hits { hits }
                }
                Err(e) => BinResponse::Error {
                    message: e.to_string(),
                },
            },
            None => not_found(&collection),
        },
        BinRequest::Count { collection } => match registry.get(&collection) {
            Some(backend) => match backend.count() {
                Ok(count) => BinResponse::Count {
                    count: count as u64,
                },
                Err(e) => BinResponse::Error {
                    message: e.to_string(),
                },
            },
            None => not_found(&collection),
        },
    }
}

/// The binary-protocol listener: one thread per connection, one framed
/// request/response exchange per loop iteration.
pub struct BinServer {
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl BinServer {
    /// Bind `addr` (port 0 for ephemeral) and serve `registry`.
    pub fn serve(addr: &str, registry: Arc<Registry>) -> std::io::Result<BinServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let accept_running = running.clone();
        let accept_thread = std::thread::Builder::new()
            .name("vq-bin-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if !accept_running.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let registry = registry.clone();
                    let running = accept_running.clone();
                    let _ = std::thread::Builder::new()
                        .name("vq-bin-conn".into())
                        .spawn(move || serve_connection(stream, registry, running));
                }
            })?;
        Ok(BinServer {
            addr,
            running,
            accept_thread: Some(accept_thread),
        })
    }

    /// The locally bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn shutdown(&mut self) {
        if self
            .running
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for BinServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, registry: Arc<Registry>, running: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    while running.load(Ordering::Acquire) {
        let payload = match read_frame_patiently(&mut stream, &running) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(_) => {
                // Corrupt frame: answer with a framed error, then drop
                // the connection (stream state is unknown).
                let response = BinResponse::Error {
                    message: "corrupt frame".to_string(),
                };
                let _ = write_message(&mut stream, &response);
                return;
            }
        };
        let response = match wire::from_bytes::<BinRequest>(&payload) {
            Ok(request) => handle(&registry, request),
            Err(e) => BinResponse::Error {
                message: e.to_string(),
            },
        };
        if write_message(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Wait for the next frame: short-timeout `peek` while idle (so shutdown
/// is noticed), then a long-timeout framed read once bytes start flowing.
fn read_frame_patiently(
    stream: &mut TcpStream,
    running: &AtomicBool,
) -> VqResult<Option<Vec<u8>>> {
    let mut probe = [0u8; 1];
    loop {
        if !running.load(Ordering::Acquire) {
            return Ok(None);
        }
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(None), // clean EOF between frames
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(None),
        }
    }
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let frame = wire::read_frame(stream);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    frame
}

/// Serialize + frame + send one message.
pub fn write_message<T: Serialize, W: Write>(w: &mut W, message: &T) -> VqResult<()> {
    let payload = wire::to_bytes(message)?;
    wire::write_frame(w, &payload).map_err(|e| vq_core::VqError::Network(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_messages_roundtrip_through_wire() {
        let request = BinRequest::Search {
            collection: "papers".into(),
            request: SearchRequest::new(vec![0.5, 0.25], 10),
        };
        let bytes = wire::to_bytes(&request).expect("encode");
        let back: BinRequest = wire::from_bytes(&bytes).expect("decode");
        match back {
            BinRequest::Search {
                collection,
                request: decoded,
            } => {
                assert_eq!(collection, "papers");
                assert_eq!(decoded, SearchRequest::new(vec![0.5, 0.25], 10));
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }

        let response = BinResponse::Hits {
            hits: vec![ScoredPoint::new(3, 0.75)],
        };
        let bytes = wire::to_bytes(&response).expect("encode");
        let back: BinResponse = wire::from_bytes(&bytes).expect("decode");
        assert_eq!(back, response);
    }
}
