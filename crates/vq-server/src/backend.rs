//! Serving backends: the dyn-erased surface the HTTP and binary frontends
//! call into, and its cluster-backed implementation.
//!
//! The frontends are deliberately not generic over the cluster's
//! transport — a server process speaks to *one* cluster, and erasing
//! `Transport` here keeps every route handler monomorphic. The erased
//! trait is small: exactly the operations the Qdrant-compatible API
//! exposes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use vq_cluster::{Cluster, ClusterClient, ClusterMsg};
use vq_collection::{CollectionConfig, CollectionStats, SearchRequest};
use vq_core::{Point, PointBlock, ScoredPoint, VqError, VqResult};
use vq_net::Transport;

/// One served collection: the operations the REST and binary frontends
/// need, with the cluster transport type erased.
pub trait Backend: Send + Sync {
    /// Collection parameters (dimension, metric, …).
    fn config(&self) -> CollectionConfig;
    /// Upsert points; returns how many were written.
    fn upsert(&self, points: Vec<Point>) -> VqResult<usize>;
    /// Upsert a columnar block (the binary protocol's zero-copy path).
    fn upsert_block(&self, block: Arc<PointBlock>) -> VqResult<usize>;
    /// Broadcast–reduce search.
    fn search(&self, request: SearchRequest) -> VqResult<Vec<ScoredPoint>>;
    /// Live point count.
    fn count(&self) -> VqResult<usize>;
    /// Collection statistics.
    fn stats(&self) -> VqResult<CollectionStats>;
}

/// A [`Backend`] over a live [`Cluster`].
///
/// Clients are pooled: a route handler checks one out for the duration of
/// a call and returns it, so concurrent HTTP connections don't serialize
/// on a single client while idle connections don't pin cluster endpoints.
pub struct ClusterBackend<T: Transport<ClusterMsg>> {
    cluster: Arc<Cluster<T>>,
    pool: Mutex<Vec<ClusterClient<T>>>,
}

impl<T: Transport<ClusterMsg>> ClusterBackend<T> {
    /// Wrap a running cluster.
    pub fn new(cluster: Arc<Cluster<T>>) -> Self {
        ClusterBackend {
            cluster,
            pool: Mutex::new(Vec::new()),
        }
    }

    fn with_client<R>(&self, f: impl FnOnce(&mut ClusterClient<T>) -> VqResult<R>) -> VqResult<R> {
        let mut client = {
            let mut pool = self.pool.lock();
            pool.pop()
        }
        .unwrap_or_else(|| self.cluster.client());
        let result = f(&mut client);
        self.pool.lock().push(client);
        result
    }
}

impl<T: Transport<ClusterMsg>> Backend for ClusterBackend<T> {
    fn config(&self) -> CollectionConfig {
        *self.cluster.collection_config()
    }

    fn upsert(&self, points: Vec<Point>) -> VqResult<usize> {
        let n = points.len();
        self.with_client(|c| c.upsert_batch(points))?;
        Ok(n)
    }

    fn upsert_block(&self, block: Arc<PointBlock>) -> VqResult<usize> {
        let n = block.len();
        self.with_client(|c| c.upsert_block(&block))?;
        Ok(n)
    }

    fn search(&self, request: SearchRequest) -> VqResult<Vec<ScoredPoint>> {
        self.with_client(|c| c.search(request))
    }

    fn count(&self) -> VqResult<usize> {
        self.with_client(|c| c.count(None))
    }

    fn stats(&self) -> VqResult<CollectionStats> {
        self.with_client(|c| c.stats())
    }
}

/// Builds a backend on demand when `PUT /collections/{name}` arrives for
/// a collection that doesn't exist yet (how `vq serve` spins up a
/// cluster per created collection).
pub type BackendFactory =
    Box<dyn Fn(&str, CollectionConfig) -> VqResult<Arc<dyn Backend>> + Send + Sync>;

/// The set of collections a server exposes, by name.
#[derive(Default)]
pub struct Registry {
    collections: RwLock<HashMap<String, Arc<dyn Backend>>>,
    factory: Option<BackendFactory>,
}

impl Registry {
    /// An empty registry that rejects unknown collection creation.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry that creates collections through `factory`.
    pub fn with_factory(factory: BackendFactory) -> Self {
        Registry {
            collections: RwLock::new(HashMap::new()),
            factory: Some(factory),
        }
    }

    /// Pre-register a collection under `name`.
    pub fn insert(&self, name: &str, backend: Arc<dyn Backend>) {
        self.collections
            .write()
            .insert(name.to_string(), backend);
    }

    /// Look up a collection.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Backend>> {
        self.collections.read().get(name).cloned()
    }

    /// Collection names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.collections.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Create-or-validate, the semantics of Qdrant's `PUT
    /// /collections/{name}`: creating an existing collection succeeds if
    /// the parameters match (idempotent PUT) and errors otherwise.
    /// Returns whether a new collection was created.
    pub fn create(&self, name: &str, config: CollectionConfig) -> VqResult<bool> {
        if let Some(existing) = self.get(name) {
            let have = existing.config();
            if have.dim != config.dim || have.metric != config.metric {
                return Err(VqError::InvalidRequest(format!(
                    "collection `{name}` exists with dim {} metric {:?}",
                    have.dim, have.metric
                )));
            }
            return Ok(false);
        }
        let factory = self.factory.as_ref().ok_or_else(|| {
            VqError::InvalidRequest(format!(
                "collection `{name}` does not exist and this server cannot create collections"
            ))
        })?;
        let backend = factory(name, config)?;
        self.collections
            .write()
            .insert(name.to_string(), backend);
        Ok(true)
    }
}
