//! Network serving layer: a Qdrant-compatible REST API and a framed
//! binary protocol over a live [`vq_cluster::Cluster`].
//!
//! Two frontends share one [`Registry`] of dyn-erased collection
//! backends:
//!
//! - **REST** ([`http`] + [`rest`]): a hand-rolled HTTP/1.1 server with
//!   Qdrant's route shapes — `PUT /collections/{c}`,
//!   `PUT /collections/{c}/points`,
//!   `POST /collections/{c}/points/search`, plus `GET /healthz` and a
//!   Prometheus `GET /metrics` fed by `vq-obs`. Mirrors the interface the
//!   paper's clients drive (§3.2 uses Qdrant's REST API from Python).
//! - **Binary** ([`protocol`]): length-prefixed `vbin` frames on a second
//!   port, carrying [`vq_core::PointBlock`] slabs so bulk upserts skip
//!   per-point JSON entirely. `repro protocol` measures exactly this
//!   REST-vs-binary gap.
//!
//! Everything is `std`-only: no async runtime, no HTTP framework — one
//! thread per connection, the same discipline as the cluster's worker
//! loops. [`client`] holds matching blocking clients for both ports.

#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod http;
pub mod protocol;
pub mod rest;

use std::sync::Arc;

pub use backend::{Backend, BackendFactory, ClusterBackend, Registry};
pub use client::{BinClient, RestClient};
pub use http::{HttpRequest, HttpResponse, HttpServer};
pub use protocol::{BinRequest, BinResponse, BinServer};

/// Where the two frontends listen.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// REST listener address (`host:port`; port 0 for ephemeral).
    pub rest_addr: String,
    /// Binary-protocol listener address; `None` disables the binary port.
    pub bin_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rest_addr: "127.0.0.1:6333".to_string(),
            bin_addr: Some("127.0.0.1:6334".to_string()),
        }
    }
}

/// Both frontends over one shared [`Registry`].
pub struct VqServer {
    registry: Arc<Registry>,
    http: HttpServer,
    bin: Option<BinServer>,
}

impl VqServer {
    /// Bind and serve. Fails fast if either listener can't bind.
    pub fn serve(registry: Arc<Registry>, config: &ServerConfig) -> std::io::Result<VqServer> {
        let route_registry = registry.clone();
        let http = HttpServer::serve(
            &config.rest_addr,
            Arc::new(move |request| rest::route(&route_registry, request)),
        )?;
        let bin = match &config.bin_addr {
            Some(addr) => Some(BinServer::serve(addr, registry.clone())?),
            None => None,
        };
        Ok(VqServer {
            registry,
            http,
            bin,
        })
    }

    /// The registry both frontends serve.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Resolved REST listener address.
    pub fn rest_addr(&self) -> std::net::SocketAddr {
        self.http.addr()
    }

    /// Resolved binary listener address, if enabled.
    pub fn bin_addr(&self) -> Option<std::net::SocketAddr> {
        self.bin.as_ref().map(|b| b.addr())
    }

    /// Stop both listeners and join their accept loops.
    pub fn shutdown(&mut self) {
        self.http.shutdown();
        if let Some(bin) = &mut self.bin {
            bin.shutdown();
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    /// Serializes tests that install the process-global tracer.
    pub static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}

#[cfg(test)]
mod tests {
    use super::*;
    use vq_cluster::{Cluster, ClusterConfig};
    use vq_collection::{CollectionConfig, SearchRequest};
    use vq_core::{Distance, Payload, Point};

    fn sample_points(n: usize, dim: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let vector: Vec<f32> = (0..dim)
                    .map(|d| ((i * 31 + d * 7) % 97) as f32 / 97.0 - 0.5)
                    .collect();
                let mut payload = Payload::new();
                payload.insert("tag", format!("p{i}"));
                Point::with_payload(i as u64 + 1, vector, payload)
            })
            .collect()
    }

    fn serve_cluster(dim: usize) -> (Arc<Cluster>, VqServer) {
        let cluster = Cluster::start(
            ClusterConfig::new(2).shards(2),
            CollectionConfig::new(dim, Distance::Euclid),
        )
        .expect("cluster start");
        let registry = Arc::new(Registry::new());
        registry.insert("bench", Arc::new(ClusterBackend::new(cluster.clone())));
        let config = ServerConfig {
            rest_addr: "127.0.0.1:0".to_string(),
            bin_addr: Some("127.0.0.1:0".to_string()),
        };
        let server = VqServer::serve(registry, &config).expect("server start");
        (cluster, server)
    }

    #[test]
    fn rest_and_binary_serve_identical_results() {
        let dim = 8;
        let (cluster, mut server) = serve_cluster(dim);
        let points = sample_points(64, dim);

        // Upsert half over REST, half over the binary port.
        let mut rest = RestClient::connect(server.rest_addr()).expect("rest connect");
        rest.upsert_points("bench", &points[..32]).expect("rest upsert");
        let mut bin = BinClient::connect(server.bin_addr().unwrap()).expect("bin connect");
        bin.ping().expect("ping");
        let n = bin.upsert_points("bench", &points[32..]).expect("bin upsert");
        assert_eq!(n, 32);
        assert_eq!(bin.count("bench").expect("count"), 64);

        // The same query answered three ways must be bit-identical.
        let request = SearchRequest::new(points[5].vector.clone(), 10);
        let mut inproc = cluster.client();
        let direct = inproc.search(request.clone()).expect("in-proc search");
        let via_bin = bin.search("bench", &request).expect("bin search");
        let via_rest = rest.search("bench", &request).expect("rest search");
        assert_eq!(direct, via_bin, "binary path must match in-proc");
        assert_eq!(direct, via_rest, "REST path must match in-proc");
        assert_eq!(direct.len(), 10);

        // Payload round-trips through both network paths.
        let mut with_payload = SearchRequest::new(points[5].vector.clone(), 3);
        with_payload.with_payload = true;
        let direct = inproc.search(with_payload.clone()).expect("in-proc search");
        assert_eq!(bin.search("bench", &with_payload).expect("bin"), direct);
        assert_eq!(rest.search("bench", &with_payload).expect("rest"), direct);
        assert!(direct[0].payload.is_some());

        server.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn rest_surface_covers_health_metrics_and_collection_lifecycle() {
        // Counters are no-ops without a recorder; install one so /metrics
        // has something to expose.
        let _obs = vq_obs::ObsGuard::install_default();
        let (cluster, mut server) = serve_cluster(4);
        let mut rest = RestClient::connect(server.rest_addr()).expect("rest connect");

        assert!(rest.healthz().expect("healthz"));
        let metrics = rest.metrics().expect("metrics");
        assert!(
            metrics.contains("server_http_requests"),
            "metrics should expose server counters, got:\n{metrics}"
        );

        // Idempotent PUT on an existing collection with matching params.
        rest.create_collection("bench", 4, "Euclid").expect("idempotent create");
        // Mismatched params must be rejected.
        assert!(rest.create_collection("bench", 9, "Euclid").is_err());
        // No factory installed: unknown collections can't be created.
        assert!(rest.create_collection("other", 4, "Euclid").is_err());
        // Unknown collection searches 404 cleanly.
        let request = SearchRequest::new(vec![0.0; 4], 1);
        assert!(rest.search("missing", &request).is_err());

        server.shutdown();
        cluster.shutdown();
    }
}
