//! A hand-rolled HTTP/1.1 server: request-line + headers + Content-Length
//! bodies, keep-alive, connections served by a small *bounded* pool.
//!
//! Zero dependencies by design — the serving layer has to run on
//! compute nodes where pulling an async stack is unwarranted for a
//! fixed five-route API. Chunked transfer encoding is answered with
//! `501 Not Implemented` rather than guessed at.
//!
//! Connections dispatch onto a [`vq_core::ExecPool`] (the same primitive
//! backing the per-worker search pools) instead of spawning a thread
//! each: a connection burst is bounded by the pool width plus its
//! injection queue, so it cannot oversubscribe the cores the search
//! pools were just pinned to. Overflow connections are answered `503`
//! and closed, counted under `server.conns_rejected`; accepted
//! connections are tracked by the `server.conns_active` gauge.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vq_core::{ExecPool, PoolConfig};

/// Largest accepted request body (64 MiB — a generous points batch).
pub const MAX_BODY: usize = 64 << 20;
/// Largest accepted header block.
const MAX_HEADER_BYTES: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, uppercased (`GET`, `PUT`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw query string (without `?`), empty when absent.
    pub query: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless Content-Length was given).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Look up a header by lowercased name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response about to be written.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Extra response headers (e.g. `x-vq-trace-id`); names must be
    /// valid header tokens, values must not contain CR/LF.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Attach an extra response header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra_headers.push((name.to_string(), value));
        self
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Sizing of the bounded connection pool.
#[derive(Debug, Clone, Copy)]
pub struct HttpConfig {
    /// Connections served concurrently (pool threads).
    pub conn_threads: usize,
    /// Accepted-but-waiting connections; beyond this the server sheds
    /// load with `503` instead of queueing without bound.
    pub queue: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            conn_threads: 8,
            queue: 64,
        }
    }
}

/// The server half: a bound listener, the accept-loop thread handle,
/// and the bounded connection pool.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    running: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    pool: Arc<ExecPool>,
}

type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `handler` on every request until [`HttpServer::shutdown`], with
    /// the default pool sizing.
    pub fn serve(addr: &str, handler: Handler) -> std::io::Result<HttpServer> {
        Self::serve_with(addr, handler, HttpConfig::default())
    }

    /// [`HttpServer::serve`] with explicit pool sizing.
    pub fn serve_with(
        addr: &str,
        handler: Handler,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let running = Arc::new(AtomicBool::new(true));
        let pool = ExecPool::new(
            PoolConfig::new(config.conn_threads).queue_capacity(config.queue),
        );
        let accept_running = running.clone();
        let accept_pool = pool.clone();
        let accept_thread = std::thread::Builder::new()
            .name("vq-http-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if !accept_running.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = handler.clone();
                    let running = accept_running.clone();
                    // Keep a writer handle so an overflow connection can
                    // be told why it is being dropped.
                    let reject_writer = stream.try_clone().ok();
                    let job = Box::new(move || serve_connection(stream, handler, running));
                    if accept_pool.spawn(job).is_err() {
                        vq_obs::count("server.conns_rejected", 1);
                        if let Some(mut w) = reject_writer {
                            let _ = write_response(
                                &mut w,
                                &HttpResponse::json(
                                    503,
                                    "{\"status\":{\"error\":\"Service Unavailable\"}}"
                                        .to_string(),
                                ),
                                false,
                            );
                        }
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            running,
            accept_thread: Some(accept_thread),
            pool,
        })
    }

    /// The locally bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept loop, then the
    /// connection pool. In-flight connections finish their current
    /// request and exit on the next read (bounded by the 500 ms read
    /// timeout); queued connections that never started are dropped.
    pub fn shutdown(&mut self) {
        if self
            .running
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        // Unblock the accept() by connecting once.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.pool.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements `server.conns_active` even when the handler panics.
struct ActiveConnGuard;

impl ActiveConnGuard {
    fn enter() -> Self {
        vq_obs::handle_gauge("server.conns_active").add(1);
        ActiveConnGuard
    }
}

impl Drop for ActiveConnGuard {
    fn drop(&mut self) {
        vq_obs::handle_gauge("server.conns_active").add(-1);
    }
}

fn serve_connection(stream: TcpStream, handler: Handler, running: Arc<AtomicBool>) {
    let _active = ActiveConnGuard::enter();
    // A read timeout bounds how long an idle keep-alive connection can
    // hold its thread after shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while running.load(Ordering::Acquire) {
        let request = match read_request(&mut reader, &running) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean close or shutdown
            Err(status) => {
                let _ = write_response(
                    &mut writer,
                    &HttpResponse::json(status, format!("{{\"status\":{{\"error\":\"{}\"}}}}", status_reason(status))),
                    false,
                );
                return;
            }
        };
        let keep_alive = request
            .header("connection")
            .map(|v| !v.eq_ignore_ascii_case("close"))
            .unwrap_or(true);
        vq_obs::count("server.http_requests", 1);
        let response = handler(&request);
        if response.status >= 400 {
            vq_obs::count("server.http_errors", 1);
        }
        if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Read one request. `Ok(None)` means the peer closed cleanly (or the
/// server is shutting down); `Err(status)` is a protocol-level rejection.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    running: &AtomicBool,
) -> Result<Option<HttpRequest>, u16> {
    // Request line — may block across timeouts while idle in keep-alive.
    let line = match read_line_patiently(reader, running)? {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_ascii_uppercase();
    let target = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/1.") {
        return Err(400);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = match read_line_patiently(reader, running)? {
            Some(l) => l,
            None => return Err(400), // torn mid-request
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(400);
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let mut request = HttpRequest {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(501);
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len.parse().map_err(|_| 400u16)?;
        if len > MAX_BODY {
            return Err(413);
        }
        let mut body = vec![0u8; len];
        read_exact_patiently(reader, &mut body, running)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Read a CRLF-terminated line, retrying across read timeouts while the
/// server is running. `Ok(None)` = peer closed before any byte arrived.
fn read_line_patiently(
    reader: &mut BufReader<TcpStream>,
    running: &AtomicBool,
) -> Result<Option<String>, u16> {
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => {
                return if line.is_empty() { Ok(None) } else { Err(400) };
            }
            Ok(_) => {
                if line.ends_with('\n') {
                    while line.ends_with('\n') || line.ends_with('\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                // Partial line before a timeout boundary: keep reading.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !running.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(_) => return Ok(None),
        }
        if line.len() > MAX_HEADER_BYTES {
            return Err(400);
        }
    }
}

fn read_exact_patiently(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    running: &AtomicBool,
) -> Result<(), u16> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(400),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if !running.load(Ordering::Acquire) {
                    return Err(400);
                }
            }
            Err(_) => return Err(400),
        }
    }
    Ok(())
}

fn write_response(
    writer: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        HttpServer::serve(
            "127.0.0.1:0",
            Arc::new(|req: &HttpRequest| {
                HttpResponse::text(
                    200,
                    format!("{} {} {}", req.method, req.path, req.body.len()),
                )
            }),
        )
        .expect("bind")
    }

    fn raw_roundtrip(addr: std::net::SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(request.as_bytes()).expect("write");
        let mut out = Vec::new();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    out.extend_from_slice(&buf[..n]);
                    // Headers parsed naively: stop once body length is met.
                    if let Some(pos) = find_body(&out) {
                        let need = content_length(&out).unwrap_or(0);
                        if out.len() >= pos + need {
                            break;
                        }
                    }
                }
                Err(_) => break,
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    fn find_body(bytes: &[u8]) -> Option<usize> {
        bytes
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| p + 4)
    }

    fn content_length(bytes: &[u8]) -> Option<usize> {
        let head = String::from_utf8_lossy(bytes);
        head.lines()
            .find(|l| l.to_ascii_lowercase().starts_with("content-length:"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
    }

    #[test]
    fn get_roundtrip_and_keep_alive() {
        let mut server = echo_server();
        let addr = server.addr();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Two sequential requests over one keep-alive connection.
        for i in 0..2 {
            let req = format!("GET /ping{i} HTTP/1.1\r\nHost: x\r\n\r\n");
            s.write_all(req.as_bytes()).unwrap();
            let mut buf = [0u8; 4096];
            let mut got = Vec::new();
            loop {
                let n = s.read(&mut buf).expect("read");
                got.extend_from_slice(&buf[..n]);
                if let Some(pos) = find_body(&got) {
                    if got.len() >= pos + content_length(&got).unwrap() {
                        break;
                    }
                }
            }
            let text = String::from_utf8_lossy(&got);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.ends_with(&format!("GET /ping{i} 0")), "{text}");
        }
        server.shutdown();
    }

    #[test]
    fn body_is_read_by_content_length() {
        let mut server = echo_server();
        let out = raw_roundtrip(
            server.addr(),
            "PUT /data HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(out.contains("PUT /data 5"), "{out}");
        server.shutdown();
    }

    #[test]
    fn chunked_encoding_is_rejected_with_501() {
        let mut server = echo_server();
        let out = raw_roundtrip(
            server.addr(),
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        );
        assert!(out.starts_with("HTTP/1.1 501"), "{out}");
        server.shutdown();
    }

    #[test]
    fn garbage_request_line_is_rejected() {
        let mut server = echo_server();
        let out = raw_roundtrip(server.addr(), "NOT-HTTP\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn overflow_connections_are_shed_with_503() {
        // A zero-depth queue can never enqueue, so every connection is
        // deterministically shed — no timing games needed to fill it.
        let mut server = HttpServer::serve_with(
            "127.0.0.1:0",
            Arc::new(|_req: &HttpRequest| HttpResponse::text(200, "ok".into())),
            HttpConfig {
                conn_threads: 1,
                queue: 0,
            },
        )
        .expect("bind");
        let out = raw_roundtrip(server.addr(), "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 503"), "{out}");
        assert!(out.contains("Service Unavailable"), "{out}");
        server.shutdown();
    }

    #[test]
    fn active_connections_are_gauged() {
        let _obs = vq_obs::ObsGuard::install_default();
        let mut server = echo_server();
        let addr = server.addr();
        // Retry with a fresh connection each round: a concurrent test may
        // swap the global recorder between our guard's increment and the
        // read, but a new connection re-enters under the current one.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(b"GET /g HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut got = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = s.read(&mut buf).expect("read");
                got.extend_from_slice(&buf[..n]);
                if let Some(pos) = find_body(&got) {
                    if got.len() >= pos + content_length(&got).unwrap() {
                        break;
                    }
                }
            }
            // Keep-alive: the connection is still held, so its guard is
            // live and the gauge must show it.
            if vq_obs::handle_gauge("server.conns_active").get() >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "conns_active never observed >= 1"
            );
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_accept_and_idle_connections() {
        let mut server = echo_server();
        let addr = server.addr();
        // An idle keep-alive connection must not wedge shutdown.
        let _idle = TcpStream::connect(addr).expect("connect");
        server.shutdown();
        assert!(TcpStream::connect(addr).is_err() || {
            // A racing connect may still succeed against the dying
            // listener backlog; either outcome is fine.
            true
        });
    }
}
