//! Qdrant-compatible REST routes over [`crate::http`].
//!
//! Implemented surface (the endpoints the paper's harness drives):
//!
//! * `PUT /collections/{name}` — create a collection
//!   (`{"vectors":{"size":D,"distance":"Cosine"}}`)
//! * `PUT /collections/{name}/points` — upsert a points batch
//!   (`{"points":[{"id":1,"vector":[...],"payload":{...}}]}`)
//! * `POST /collections/{name}/points/search` — k-NN search
//!   (`{"vector":[...],"limit":K,"with_payload":true}`)
//! * `GET /collections/{name}` — collection info
//! * `GET /collections` — list collections
//! * `GET /healthz` — liveness
//! * `GET /metrics` — Prometheus text from the vq-obs registry
//!
//! Responses use Qdrant's envelope:
//! `{"result":...,"status":"ok","time":seconds}` on success and
//! `{"status":{"error":"..."},"time":seconds}` on failure.
//!
//! JSON *output* is written by hand (field order fixed, floats via
//! Rust's shortest round-trip formatting) so responses are
//! deterministic byte-for-byte; *input* is parsed through
//! `serde_json::Value` accessors.

use std::sync::Arc;
use std::time::Instant;

use vq_collection::{CollectionConfig, SearchRequest};
use vq_core::{Distance, Payload, PayloadValue, Point, ScoredPoint, VqError};

use crate::backend::Registry;
use crate::http::{HttpRequest, HttpResponse};

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

/// Append a JSON string literal.
pub fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float with shortest round-trip formatting (`null` for
/// non-finite values, which JSON cannot carry).
pub fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn json_payload(payload: &Payload, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in payload.0.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape(k, out);
        out.push(':');
        match v {
            PayloadValue::Str(s) => json_escape(s, out),
            PayloadValue::Int(n) => out.push_str(&n.to_string()),
            PayloadValue::Float(f) => json_f64(*f, out),
            PayloadValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            PayloadValue::Keywords(words) => {
                out.push('[');
                for (j, w) in words.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    json_escape(w, out);
                }
                out.push(']');
            }
        }
    }
    out.push('}');
}

fn json_hits(hits: &[ScoredPoint], out: &mut String) {
    out.push('[');
    for (i, hit) in hits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        out.push_str(&hit.id.to_string());
        out.push_str(",\"score\":");
        json_f64(hit.score as f64, out);
        if let Some(payload) = &hit.payload {
            out.push_str(",\"payload\":");
            json_payload(payload, out);
        }
        out.push('}');
    }
    out.push(']');
}

fn envelope_ok(result: &str, started: Instant) -> HttpResponse {
    let mut body = String::with_capacity(result.len() + 48);
    body.push_str("{\"result\":");
    body.push_str(result);
    body.push_str(",\"status\":\"ok\",\"time\":");
    json_f64(started.elapsed().as_secs_f64(), &mut body);
    body.push('}');
    HttpResponse::json(200, body)
}

fn envelope_err(status: u16, message: &str, started: Instant) -> HttpResponse {
    let mut body = String::with_capacity(message.len() + 48);
    body.push_str("{\"status\":{\"error\":");
    json_escape(message, &mut body);
    body.push_str("},\"time\":");
    json_f64(started.elapsed().as_secs_f64(), &mut body);
    body.push('}');
    HttpResponse::json(status, body)
}

fn error_status(e: &VqError) -> u16 {
    match e {
        VqError::CollectionNotFound(_) | VqError::PointNotFound(_) => 404,
        VqError::InvalidRequest(_) | VqError::DimensionMismatch { .. } => 400,
        _ => 500,
    }
}

// ---------------------------------------------------------------------------
// Request parsing (through serde_json::Value accessors only)
// ---------------------------------------------------------------------------

fn parse_body(body: &[u8]) -> Result<serde_json::Value, String> {
    serde_json::from_slice::<serde_json::Value>(body).map_err(|e| format!("invalid JSON: {e}"))
}

fn parse_distance(name: &str) -> Result<Distance, String> {
    match name.to_ascii_lowercase().as_str() {
        "cosine" => Ok(Distance::Cosine),
        "dot" => Ok(Distance::Dot),
        "euclid" => Ok(Distance::Euclid),
        "manhattan" => Ok(Distance::Manhattan),
        other => Err(format!("unknown distance `{other}`")),
    }
}

fn parse_vector(value: &serde_json::Value) -> Result<Vec<f32>, String> {
    let items = value.as_array().ok_or("`vector` must be an array")?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        out.push(item.as_f64().ok_or("vector elements must be numbers")? as f32);
    }
    Ok(out)
}

fn parse_payload(value: &serde_json::Value) -> Result<Payload, String> {
    let object = value.as_object().ok_or("`payload` must be an object")?;
    let mut payload = Payload::new();
    for (key, v) in object.iter() {
        if let Some(s) = v.as_str() {
            payload.insert(key.clone(), s.to_string());
        } else if let Some(b) = v.as_bool() {
            payload.insert(key.clone(), b);
        } else if let Some(i) = v.as_i64() {
            payload.insert(key.clone(), i);
        } else if let Some(f) = v.as_f64() {
            payload.insert(key.clone(), f);
        } else if let Some(items) = v.as_array() {
            let mut words = Vec::with_capacity(items.len());
            for item in items {
                words.push(
                    item.as_str()
                        .ok_or("payload arrays must contain strings")?
                        .to_string(),
                );
            }
            payload
                .0
                .insert(key.clone(), PayloadValue::Keywords(words));
        } else {
            return Err(format!("unsupported payload value for key `{key}`"));
        }
    }
    Ok(payload)
}

fn parse_point(value: &serde_json::Value) -> Result<Point, String> {
    let id = value
        .get("id")
        .and_then(|v| v.as_u64())
        .ok_or("point needs a numeric `id`")?;
    let vector = parse_vector(value.get("vector").ok_or("point needs a `vector`")?)?;
    let payload = match value.get("payload") {
        Some(p) if !p.is_null() => parse_payload(p)?,
        _ => Payload::new(),
    };
    Ok(Point::with_payload(id, vector, payload))
}

fn parse_search(value: &serde_json::Value) -> Result<SearchRequest, String> {
    let vector = parse_vector(value.get("vector").ok_or("search needs a `vector`")?)?;
    let k = value
        .get("limit")
        .and_then(|v| v.as_u64())
        .ok_or("search needs a numeric `limit`")? as usize;
    let mut request = SearchRequest::new(vector, k);
    if let Some(with_payload) = value.get("with_payload").and_then(|v| v.as_bool()) {
        request.with_payload = with_payload;
    }
    if let Some(params) = value.get("params") {
        if let Some(ef) = params.get("hnsw_ef").and_then(|v| v.as_u64()) {
            request.ef = Some(ef as usize);
        }
        if let Some(exact) = params.get("exact").and_then(|v| v.as_bool()) {
            request.params.exact = exact;
        }
        if let Some(depth) = params.get("rerank_depth").and_then(|v| v.as_u64()) {
            request.params.rerank_depth = Some(depth as usize);
        }
    }
    Ok(request)
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Dispatch one parsed HTTP request against the collection registry.
///
/// When tracing is installed this opens a `rest_edge` root span around
/// the whole dispatch (adopting the caller's trace id from the
/// `x-vq-trace-id` header when present), echoes the id back in the
/// same response header, and stamps it into the JSON envelope so the
/// client can correlate a slow response with a server-side trace.
pub fn route(registry: &Arc<Registry>, request: &HttpRequest) -> HttpResponse {
    let Some(root) = begin_edge_trace(request) else {
        return route_inner(registry, request);
    };
    let scope = vq_obs::TraceScope::enter(root);
    let edge_started = Instant::now();
    let response = route_inner(registry, request);
    drop(scope);
    vq_obs::trace_finish(&root, "rest_edge", 0, edge_started.elapsed().as_secs_f64());
    attach_trace_id(response, root.trace_id)
}

fn begin_edge_trace(request: &HttpRequest) -> Option<vq_obs::TraceContext> {
    if !vq_obs::tracing_enabled() {
        return None;
    }
    let requested = request
        .header("x-vq-trace-id")
        .and_then(|v| u64::from_str_radix(v.trim(), 16).ok());
    vq_obs::trace_begin_root(requested)
}

/// Echo the trace id in the `x-vq-trace-id` header and, for JSON
/// envelope bodies, as a top-level `"trace_id"` field.
fn attach_trace_id(mut response: HttpResponse, trace_id: u64) -> HttpResponse {
    let id = format!("{trace_id:016x}");
    if response.content_type.starts_with("application/json") && response.body.ends_with(b"}") {
        response.body.truncate(response.body.len() - 1);
        response
            .body
            .extend_from_slice(format!(",\"trace_id\":\"{id}\"}}").as_bytes());
    }
    response.with_header("x-vq-trace-id", id)
}

fn route_inner(registry: &Arc<Registry>, request: &HttpRequest) -> HttpResponse {
    let started = Instant::now();
    let segments: Vec<&str> = request
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", []) => envelope_ok("{\"title\":\"vq\",\"version\":\"0.1.0\"}", started),
        ("GET", ["healthz"]) => {
            HttpResponse::text(200, "healthz check passed\n".to_string())
        }
        ("GET", ["metrics"]) => {
            let text = vq_obs::snapshot()
                .map(|s| s.to_prometheus())
                .unwrap_or_default();
            HttpResponse::text(200, text)
        }
        ("GET", ["collections"]) => {
            let mut result = String::from("{\"collections\":[");
            for (i, name) in registry.names().iter().enumerate() {
                if i > 0 {
                    result.push(',');
                }
                result.push_str("{\"name\":");
                json_escape(name, &mut result);
                result.push('}');
            }
            result.push_str("]}");
            envelope_ok(&result, started)
        }
        ("PUT", ["collections", name]) => put_collection(registry, name, request, started),
        ("GET", ["collections", name]) => get_collection(registry, name, started),
        ("PUT", ["collections", name, "points"]) => {
            put_points(registry, name, request, started)
        }
        ("POST", ["collections", name, "points", "search"]) => {
            post_search(registry, name, request, started)
        }
        ("GET", _) | ("PUT", _) | ("POST", _) => {
            envelope_err(404, &format!("no route for {}", request.path), started)
        }
        _ => envelope_err(405, &format!("method {} not allowed", request.method), started),
    }
}

fn put_collection(
    registry: &Arc<Registry>,
    name: &str,
    request: &HttpRequest,
    started: Instant,
) -> HttpResponse {
    let body = match parse_body(&request.body) {
        Ok(b) => b,
        Err(e) => return envelope_err(400, &e, started),
    };
    let vectors = match body.get("vectors") {
        Some(v) => v,
        None => return envelope_err(400, "missing `vectors` config", started),
    };
    let dim = match vectors.get("size").and_then(|v| v.as_u64()) {
        Some(d) if d > 0 => d as usize,
        _ => return envelope_err(400, "`vectors.size` must be a positive integer", started),
    };
    let metric = match vectors
        .get("distance")
        .and_then(|v| v.as_str())
        .map(parse_distance)
        .unwrap_or(Ok(Distance::Cosine))
    {
        Ok(m) => m,
        Err(e) => return envelope_err(400, &e, started),
    };
    match registry.create(name, CollectionConfig::new(dim, metric)) {
        Ok(_created) => envelope_ok("true", started),
        Err(e) => envelope_err(error_status(&e), &e.to_string(), started),
    }
}

fn get_collection(registry: &Arc<Registry>, name: &str, started: Instant) -> HttpResponse {
    let Some(backend) = registry.get(name) else {
        return envelope_err(404, &format!("collection `{name}` not found"), started);
    };
    let config = backend.config();
    let stats = match backend.stats() {
        Ok(s) => s,
        Err(e) => return envelope_err(error_status(&e), &e.to_string(), started),
    };
    let mut result = String::from("{\"status\":\"green\",\"points_count\":");
    result.push_str(&stats.live_points.to_string());
    result.push_str(",\"segments_count\":");
    result.push_str(&stats.segments.to_string());
    result.push_str(",\"config\":{\"params\":{\"vectors\":{\"size\":");
    result.push_str(&config.dim.to_string());
    result.push_str(",\"distance\":");
    json_escape(&format!("{:?}", config.metric), &mut result);
    result.push_str("}}}}");
    envelope_ok(&result, started)
}

fn put_points(
    registry: &Arc<Registry>,
    name: &str,
    request: &HttpRequest,
    started: Instant,
) -> HttpResponse {
    let Some(backend) = registry.get(name) else {
        return envelope_err(404, &format!("collection `{name}` not found"), started);
    };
    let body = match parse_body(&request.body) {
        Ok(b) => b,
        Err(e) => return envelope_err(400, &e, started),
    };
    let Some(items) = body.get("points").and_then(|v| v.as_array()) else {
        return envelope_err(400, "missing `points` array", started);
    };
    let mut points = Vec::with_capacity(items.len());
    for item in items.iter() {
        match parse_point(item) {
            Ok(p) => points.push(p),
            Err(e) => return envelope_err(400, &e, started),
        }
    }
    match backend.upsert(points) {
        Ok(n) => {
            vq_obs::count("server.rest_points_upserted", n as u64);
            envelope_ok(
                "{\"operation_id\":0,\"status\":\"completed\"}",
                started,
            )
        }
        Err(e) => envelope_err(error_status(&e), &e.to_string(), started),
    }
}

fn post_search(
    registry: &Arc<Registry>,
    name: &str,
    request: &HttpRequest,
    started: Instant,
) -> HttpResponse {
    let Some(backend) = registry.get(name) else {
        return envelope_err(404, &format!("collection `{name}` not found"), started);
    };
    let body = match parse_body(&request.body) {
        Ok(b) => b,
        Err(e) => return envelope_err(400, &e, started),
    };
    let search = match parse_search(&body) {
        Ok(s) => s,
        Err(e) => return envelope_err(400, &e, started),
    };
    match backend.search(search) {
        Ok(hits) => {
            vq_obs::count("server.rest_searches", 1);
            let mut result = String::new();
            json_hits(&hits, &mut result);
            envelope_ok(&result, started)
        }
        Err(e) => envelope_err(error_status(&e), &e.to_string(), started),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        let mut out = String::new();
        json_escape("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_f64_roundtrips_f32_exactly() {
        for v in [0.125f32, -3.75, 1.0e-7, 6.02e23, f32::MIN_POSITIVE] {
            let mut out = String::new();
            json_f64(v as f64, &mut out);
            let back: f64 = out.parse().expect("parses");
            assert_eq!(back as f32, v, "{out}");
        }
    }

    #[test]
    fn parse_point_reads_id_vector_payload() {
        let value = serde_json::from_str::<serde_json::Value>(
            "{\"id\":7,\"vector\":[1.0,2.5],\"payload\":{\"kind\":\"doc\",\"year\":2024,\"terms\":[\"a\",\"b\"]}}",
        )
        .unwrap();
        let point = parse_point(&value).expect("parses");
        assert_eq!(point.id, 7);
        assert_eq!(point.vector, vec![1.0, 2.5]);
        assert_eq!(
            point.payload.get("kind"),
            Some(&PayloadValue::Str("doc".into()))
        );
        assert_eq!(point.payload.get("year"), Some(&PayloadValue::Int(2024)));
        assert_eq!(
            point.payload.get("terms"),
            Some(&PayloadValue::Keywords(vec!["a".into(), "b".into()]))
        );
    }

    #[test]
    fn parse_search_reads_limit_and_params() {
        let value = serde_json::from_str::<serde_json::Value>(
            "{\"vector\":[0.5],\"limit\":3,\"with_payload\":true,\"params\":{\"hnsw_ef\":64,\"exact\":true}}",
        )
        .unwrap();
        let search = parse_search(&value).expect("parses");
        assert_eq!(search.k, 3);
        assert_eq!(search.ef, Some(64));
        assert!(search.with_payload);
        assert!(search.params.exact);
    }

    #[test]
    fn route_adopts_and_echoes_trace_id() {
        let _guard = crate::test_support::TRACE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let registry = Arc::new(Registry::new());
        let request = HttpRequest {
            method: "GET".to_string(),
            path: "/".to_string(),
            query: String::new(),
            headers: vec![("x-vq-trace-id".to_string(), "00000000000000ab".to_string())],
            body: Vec::new(),
        };

        // Without a tracer installed the response is untouched.
        let response = route(&registry, &request);
        assert!(response.extra_headers.is_empty());

        let obs =
            vq_obs::ObsGuard::install_default().with_tracer(vq_obs::TraceConfig::default());
        let response = route(&registry, &request);
        let echoed = response
            .extra_headers
            .iter()
            .find(|(k, _)| k == "x-vq-trace-id")
            .map(|(_, v)| v.as_str())
            .expect("trace id header echoed");
        assert_eq!(echoed, "00000000000000ab");
        let body = String::from_utf8(response.body.clone()).unwrap();
        assert!(body.contains("\"trace_id\":\"00000000000000ab\""), "{body}");
        let finished = obs.tracer().expect("tracer installed").finished();
        assert!(finished
            .iter()
            .any(|t| t.trace_id == 0xab && t.root_name == "rest_edge"));
    }

    #[test]
    fn hits_serialize_deterministically() {
        let hits = vec![
            ScoredPoint::new(1, 0.5),
            ScoredPoint {
                id: 2,
                score: 0.25,
                payload: Some(Payload::from_pairs([("k", "v")])),
            },
        ];
        let mut out = String::new();
        json_hits(&hits, &mut out);
        assert_eq!(
            out,
            "[{\"id\":1,\"score\":0.5},{\"id\":2,\"score\":0.25,\"payload\":{\"k\":\"v\"}}]"
        );
    }
}
