//! Synthetic peS2o-like corpus.
//!
//! peS2o is a corpus of full-text academic papers; the paper embeds
//! 8,293,485 of them, one embedding per paper (§3.1). For runtime studies
//! the relevant per-paper facts are: how many characters it has (drives
//! GPU batch packing and inference time) and which topic it belongs to
//! (drives embedding geometry and query skew). Both derive
//! deterministically from the paper id, so the "corpus" needs no storage.
//!
//! Lengths follow a log-normal — the standard shape for document-length
//! distributions — with a median around 27 k characters (full-text
//! scientific papers) and a heavy right tail capped at 400 k characters,
//! which keeps the paper's 150 k-char micro-batch cap meaningfully binding
//! for a realistic fraction of documents.

use serde::{Deserialize, Serialize};
use vq_core::{seed_rng, DeterministicSeed};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Zipf};

/// Corpus shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Papers in the corpus.
    pub papers: u64,
    /// Distinct topics (clusters in embedding space).
    pub topics: u32,
    /// Zipf skew of topic popularity (1.0 ≈ natural field sizes).
    pub topic_skew: f64,
    /// ln-space mean of the character-count distribution.
    pub len_mu: f64,
    /// ln-space std-dev of the character-count distribution.
    pub len_sigma: f64,
    /// Hard cap on characters per paper.
    pub max_chars: u64,
    /// Root seed.
    pub seed: DeterministicSeed,
}

impl CorpusSpec {
    /// The full peS2o-scale corpus (8,293,485 papers, 256 topics).
    pub fn pes2o() -> Self {
        CorpusSpec {
            papers: vq_core::size::PES2O_FULL_VECTORS,
            topics: 256,
            topic_skew: 1.05,
            // exp(10.2) ≈ 27 k chars median; sigma 0.55 puts ≈0.09 % of
            // papers above the 150 k-char GPU batch cap — matching the
            // paper's "less than 0.10 % of the papers [processed]
            // sequentially" (§3.1).
            len_mu: 10.2,
            len_sigma: 0.55,
            max_chars: 400_000,
            seed: DeterministicSeed::default(),
        }
    }

    /// A small corpus for tests and laptop-scale benches.
    pub fn small(papers: u64) -> Self {
        CorpusSpec {
            papers,
            topics: 16,
            ..Self::pes2o()
        }
    }

    /// Builder-style setter for the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = DeterministicSeed(seed);
        self
    }

    /// Metadata of paper `id` (deterministic).
    pub fn paper(&self, id: u64) -> PaperMeta {
        assert!(id < self.papers, "paper {id} out of corpus");
        let mut rng = seed_rng(self.seed.stream(1), id);
        let lognormal =
            LogNormal::new(self.len_mu, self.len_sigma).expect("valid log-normal");
        let chars = (lognormal.sample(&mut rng) as u64).clamp(200, self.max_chars);
        let zipf = Zipf::new(self.topics as u64, self.topic_skew).expect("valid zipf");
        let topic = (zipf.sample(&mut rng) as u32) - 1;
        let year = 1990 + (rng.gen_range(0..36)) as u16;
        PaperMeta {
            id,
            chars,
            topic,
            year,
        }
    }

    /// Iterate paper metadata over an id range.
    pub fn papers_in(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = PaperMeta> + '_ {
        range.map(move |id| self.paper(id))
    }

    /// A deterministic pseudo-title for paper `id` (payloads, demos).
    pub fn title(&self, id: u64) -> String {
        const ADJ: [&str; 8] = [
            "Comparative", "Structural", "Functional", "Genomic", "Metabolic", "Clinical",
            "Evolutionary", "Computational",
        ];
        const NOUN: [&str; 8] = [
            "analysis", "characterization", "profiling", "survey", "atlas", "screening",
            "modeling", "annotation",
        ];
        const SUBJ: [&str; 8] = [
            "bacterial genomes",
            "viral proteomes",
            "antibiotic resistance",
            "host-pathogen interactions",
            "plasmid networks",
            "gene regulation",
            "metagenomes",
            "phage taxonomy",
        ];
        let meta = self.paper(id);
        let mut rng = seed_rng(self.seed.stream(2), id);
        format!(
            "{} {} of {} (topic {})",
            ADJ[rng.gen_range(0..ADJ.len())],
            NOUN[rng.gen_range(0..NOUN.len())],
            SUBJ[rng.gen_range(0..SUBJ.len())],
            meta.topic
        )
    }
}

/// Deterministic per-paper facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperMeta {
    /// Paper id (also the point id in the database).
    pub id: u64,
    /// Full-text length in characters.
    pub chars: u64,
    /// Topic cluster.
    pub topic: u32,
    /// Publication year (payload filtering).
    pub year: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_id() {
        let c = CorpusSpec::small(1000);
        assert_eq!(c.paper(42), c.paper(42));
        assert_ne!(c.paper(42), c.paper(43));
        assert_eq!(c.title(7), c.title(7));
    }

    #[test]
    fn seeds_change_everything() {
        let a = CorpusSpec::small(100);
        let b = CorpusSpec::small(100).seed(999);
        assert_ne!(a.paper(5).chars, b.paper(5).chars);
    }

    #[test]
    fn length_distribution_plausible() {
        let c = CorpusSpec::pes2o();
        let lens: Vec<u64> = (0..20_000).map(|id| c.paper(id).chars).collect();
        let mean = lens.iter().sum::<u64>() as f64 / lens.len() as f64;
        assert!(
            (20_000.0..60_000.0).contains(&mean),
            "mean paper length {mean}"
        );
        let over_cap = lens.iter().filter(|&&l| l > 150_000).count() as f64 / lens.len() as f64;
        // The paper reports < 0.10 % of papers processed sequentially; the
        // length model should put a small-but-nonzero mass over the cap.
        assert!(
            (0.0001..0.005).contains(&over_cap),
            "{:.4} % of papers exceed the GPU char cap",
            over_cap * 100.0
        );
        assert!(lens.iter().all(|&l| (200..=400_000).contains(&l)));
    }

    #[test]
    fn topics_are_skewed_but_cover() {
        let c = CorpusSpec::small(20_000);
        let mut counts = vec![0u32; c.topics as usize];
        for id in 0..20_000 {
            counts[c.paper(id).topic as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 2 * min.max(1), "Zipf should skew topics: {counts:?}");
        assert!(
            counts.iter().filter(|&&c| c > 0).count() >= (c.topics as usize) / 2,
            "most topics used"
        );
    }

    #[test]
    #[should_panic(expected = "out of corpus")]
    fn out_of_range_panics() {
        CorpusSpec::small(10).paper(10);
    }
}
