//! Dataset assembly: corpus + embeddings → sized streams of points.
//!
//! The paper sizes workloads in decimal GB (1 GB tuning subset, ≈80 GB
//! full set). [`DatasetSpec`] does the same arithmetic via
//! [`VectorLayout`], and generates exactly that many points — each a
//! [`Point`] carrying its embedding and a small payload (title, topic,
//! year) like a real ingest pipeline would attach.

use crate::corpus::CorpusSpec;
use crate::embedding::EmbeddingModel;
use rayon::prelude::*;
use vq_core::{DataSize, Payload, Point, VectorLayout};

/// A sized dataset over a corpus.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    corpus: CorpusSpec,
    model: EmbeddingModel,
    vectors: u64,
    layout: VectorLayout,
    with_payload: bool,
}

impl DatasetSpec {
    /// Dataset of `size` bytes at the given per-vector layout.
    pub fn sized(corpus: CorpusSpec, model: EmbeddingModel, size: DataSize) -> Self {
        let layout = VectorLayout {
            dim: model.dim(),
            overhead_bytes: VectorLayout::QWEN3_4B.overhead_bytes,
        };
        let vectors = size.vectors(layout).min(corpus.papers);
        DatasetSpec {
            corpus,
            model,
            vectors,
            layout,
            with_payload: true,
        }
    }

    /// Dataset with an explicit vector count.
    pub fn with_vectors(corpus: CorpusSpec, model: EmbeddingModel, vectors: u64) -> Self {
        let layout = VectorLayout {
            dim: model.dim(),
            overhead_bytes: VectorLayout::QWEN3_4B.overhead_bytes,
        };
        DatasetSpec {
            vectors: vectors.min(corpus.papers),
            corpus,
            model,
            layout,
            with_payload: true,
        }
    }

    /// Skip payload generation (pure-vector benches).
    pub fn without_payload(mut self) -> Self {
        self.with_payload = false;
        self
    }

    /// Number of points.
    pub fn len(&self) -> u64 {
        self.vectors
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors == 0
    }

    /// Total bytes under the layout (the paper's "GB of dataset").
    pub fn bytes(&self) -> DataSize {
        DataSize(self.layout.bytes_for(self.vectors))
    }

    /// The corpus behind the dataset.
    pub fn corpus(&self) -> &CorpusSpec {
        &self.corpus
    }

    /// The embedding model behind the dataset.
    pub fn model(&self) -> &EmbeddingModel {
        &self.model
    }

    /// Generate point `i`.
    pub fn point(&self, i: u64) -> Point {
        assert!(i < self.vectors, "point {i} out of dataset");
        let meta = self.corpus.paper(i);
        let vector = self.model.embed(i, meta.topic);
        let payload = if self.with_payload {
            Payload::from_pairs([
                ("topic", meta.topic as i64),
                ("year", meta.year as i64),
                ("chars", meta.chars as i64),
            ])
        } else {
            Payload::new()
        };
        Point::with_payload(i, vector, payload)
    }

    /// Generate a contiguous range of points in parallel.
    pub fn points_in(&self, range: std::ops::Range<u64>) -> Vec<Point> {
        range
            .into_par_iter()
            .map(|i| self.point(i))
            .collect()
    }

    /// Split the dataset into upload batches of `batch_size` points.
    pub fn upload_batches(&self, batch_size: usize) -> UploadBatches<'_> {
        assert!(batch_size > 0);
        UploadBatches {
            dataset: self,
            batch_size: batch_size as u64,
            next: 0,
        }
    }

    /// Partition ids across `workers` contiguously (the paper's layout:
    /// each worker gets ≈ N/workers of the data, one client per worker).
    pub fn partition(&self, workers: u32) -> Vec<std::ops::Range<u64>> {
        let w = workers.max(1) as u64;
        let per = self.vectors / w;
        let rem = self.vectors % w;
        let mut out = Vec::with_capacity(w as usize);
        let mut start = 0;
        for i in 0..w {
            let extra = u64::from(i < rem);
            let end = start + per + extra;
            out.push(start..end);
            start = end;
        }
        out
    }
}

/// Iterator over upload batches (ranges of point ids).
pub struct UploadBatches<'a> {
    dataset: &'a DatasetSpec,
    batch_size: u64,
    next: u64,
}

impl Iterator for UploadBatches<'_> {
    type Item = std::ops::Range<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.dataset.len() {
            return None;
        }
        let start = self.next;
        let end = (start + self.batch_size).min(self.dataset.len());
        self.next = end;
        Some(start..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset(vectors: u64) -> DatasetSpec {
        let corpus = CorpusSpec::small(100_000);
        let model = EmbeddingModel::small(&corpus, 32);
        DatasetSpec::with_vectors(corpus, model, vectors)
    }

    #[test]
    fn sizing_matches_layout_math() {
        let corpus = CorpusSpec::pes2o();
        let model = EmbeddingModel::small(&corpus, 2560);
        let d = DatasetSpec::sized(corpus, model, DataSize::gb(1));
        // ≈ 96–97 k Qwen3-sized vectors per decimal GB.
        assert!((90_000..105_000).contains(&d.len()), "{}", d.len());
        assert!(d.bytes().0 <= DataSize::gb(1).0);
    }

    #[test]
    fn points_are_deterministic_with_payload() {
        let d = small_dataset(100);
        let a = d.point(5);
        let b = d.point(5);
        assert_eq!(a, b);
        assert_eq!(a.id, 5);
        assert_eq!(a.vector.len(), 32);
        assert!(a.payload.get("topic").is_some());
        assert!(a.payload.get("year").is_some());
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let d = small_dataset(50);
        let par = d.points_in(10..30);
        for (i, p) in (10..30).zip(&par) {
            assert_eq!(p, &d.point(i));
        }
    }

    #[test]
    fn batches_cover_exactly_once() {
        let d = small_dataset(25);
        let batches: Vec<_> = d.upload_batches(10).collect();
        assert_eq!(batches, vec![0..10, 10..20, 20..25]);
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let d = small_dataset(103);
        let parts = d.partition(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, 103);
        let total: u64 = parts.iter().map(|r| r.end - r.start).sum();
        assert_eq!(total, 103);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            // Near-equal split.
            let a = w[0].end - w[0].start;
            let b = w[1].end - w[1].start;
            assert!(a.abs_diff(b) <= 1);
        }
    }

    #[test]
    fn without_payload_is_lighter() {
        let d = small_dataset(10).without_payload();
        assert!(d.point(0).payload.is_empty());
    }
}
