//! Exact ground truth and recall over generated datasets.

use crate::dataset::DatasetSpec;
use rayon::prelude::*;
use vq_core::Distance;
use vq_index::{DenseVectors, FlatIndex};

/// Precomputed exact neighbors for a query set.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `truth[q]` = ids of the exact top-k for query q.
    truth: Vec<Vec<u32>>,
    k: usize,
}

impl GroundTruth {
    /// Compute exact top-`k` answers for `queries` over the dataset
    /// (brute force, parallel over queries).
    pub fn compute(
        dataset: &DatasetSpec,
        metric: Distance,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Self {
        // Materialize vectors once (ground truth is for laptop-scale sets).
        let mut source = DenseVectors::new(dataset.model().dim());
        for i in 0..dataset.len() {
            let mut p = dataset.point(i);
            if metric.normalizes_on_ingest() {
                vq_core::vector::normalize_in_place(&mut p.vector);
            }
            source.push(&p.vector);
        }
        let flat = FlatIndex::new(metric);
        let truth = queries
            .par_iter()
            .map(|q| {
                let mut q = q.clone();
                if metric.normalizes_on_ingest() {
                    vq_core::vector::normalize_in_place(&mut q);
                }
                flat.search(&source, &q, k, None)
                    .into_iter()
                    .map(|(o, _)| o)
                    .collect()
            })
            .collect();
        GroundTruth { truth, k }
    }

    /// `k` used at computation time.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Exact answer for query `q`.
    pub fn answers(&self, q: usize) -> &[u32] {
        &self.truth[q]
    }

    /// Recall of `got` (ids) against query `q`'s truth.
    pub fn recall(&self, q: usize, got: &[u32]) -> f64 {
        vq_index::recall_at_k(got, &self.truth[q])
    }

    /// Mean recall over per-query results.
    pub fn mean_recall(&self, results: &[Vec<u32>]) -> f64 {
        assert_eq!(results.len(), self.truth.len());
        let sum: f64 = results
            .iter()
            .zip(&self.truth)
            .map(|(got, truth)| vq_index::recall_at_k(got, truth))
            .sum();
        sum / self.truth.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;
    use crate::embedding::EmbeddingModel;
    use crate::terms::TermWorkload;
    use crate::DatasetSpec;

    #[test]
    fn truth_self_recall_is_one() {
        let corpus = CorpusSpec::small(2000);
        let model = EmbeddingModel::small(&corpus, 16);
        let d = DatasetSpec::with_vectors(corpus, model, 500);
        let terms = TermWorkload::generate(d.corpus(), 10);
        let queries = terms.query_vectors(d.model());
        let gt = GroundTruth::compute(&d, Distance::Cosine, &queries, 5);
        assert_eq!(gt.k(), 5);
        let results: Vec<Vec<u32>> = (0..10).map(|q| gt.answers(q).to_vec()).collect();
        assert_eq!(gt.mean_recall(&results), 1.0);
        assert_eq!(gt.recall(0, gt.answers(0)), 1.0);
    }

    #[test]
    fn topic_queries_find_topic_documents() {
        // A query about topic T should mostly retrieve topic-T papers —
        // the clustered-geometry sanity check for the whole workload
        // stack.
        let corpus = CorpusSpec::small(3000);
        let model = EmbeddingModel::small(&corpus, 32);
        let d = DatasetSpec::with_vectors(corpus, model, 3000);
        let terms = TermWorkload::generate(d.corpus(), 20);
        let queries = terms.query_vectors(d.model());
        let gt = GroundTruth::compute(&d, Distance::Cosine, &queries, 10);
        let mut matches = 0usize;
        let mut total = 0usize;
        for (qi, term) in terms.terms().iter().enumerate() {
            for &doc in gt.answers(qi) {
                total += 1;
                if d.corpus().paper(doc as u64).topic == term.topic {
                    matches += 1;
                }
            }
        }
        let frac = matches as f64 / total as f64;
        assert!(
            frac > 0.5,
            "only {frac:.2} of exact neighbors share the query topic"
        );
    }
}
