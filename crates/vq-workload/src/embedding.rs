//! Deterministic synthetic embeddings.
//!
//! Stands in for Qwen3-Embedding-4B (2560 dimensions). Real text
//! embeddings are *clustered*: documents about one topic occupy a cone of
//! the sphere. The generator reproduces that geometry: each topic has a
//! fixed random centroid; a paper's embedding is
//! `normalize(centroid + noise_scale · gaussian)`, all seeded by
//! `(corpus seed, paper id)` so any vector can be regenerated on demand —
//! no 80 GB of storage needed to *describe* an 80 GB dataset.

use crate::corpus::CorpusSpec;
use rand::Rng;
use rand_distr::StandardNormal;
use vq_core::seed_rng;

/// Stream ids (decorrelate centroid/noise/query draws).
const STREAM_CENTROID: u64 = 100;
const STREAM_NOISE: u64 = 101;
const STREAM_QUERY: u64 = 102;

/// Qwen3-Embedding-4B output dimensionality.
pub const QWEN3_4B_DIM: usize = 2560;

/// A deterministic embedding model over a corpus.
#[derive(Debug, Clone)]
pub struct EmbeddingModel {
    dim: usize,
    noise_scale: f32,
    /// Topic centroids, row-major (unit vectors).
    centroids: Vec<f32>,
    topics: u32,
    seed: u64,
}

impl EmbeddingModel {
    /// Model for `corpus` at the given dimensionality.
    ///
    /// `noise_scale` controls cluster tightness: 1.0/sqrt(dim)-scale noise
    /// against unit centroids gives cosine similarities within a topic of
    /// roughly 0.5–0.8, matching what dense text encoders produce for
    /// same-topic documents.
    pub fn new(corpus: &CorpusSpec, dim: usize, noise_scale: f32) -> Self {
        let seed = corpus.seed.stream(3);
        let topics = corpus.topics;
        let mut centroids = Vec::with_capacity(topics as usize * dim);
        for t in 0..topics {
            let mut rng = seed_rng(seed ^ STREAM_CENTROID, t as u64);
            let mut c: Vec<f32> = (0..dim).map(|_| rng.sample::<f32, _>(StandardNormal)).collect();
            vq_core::vector::normalize_in_place(&mut c);
            centroids.extend_from_slice(&c);
        }
        EmbeddingModel {
            dim,
            noise_scale,
            centroids,
            topics,
            seed,
        }
    }

    /// The paper-scale model: 2560 dims, default tightness.
    pub fn qwen3_4b(corpus: &CorpusSpec) -> Self {
        Self::new(corpus, QWEN3_4B_DIM, 0.7)
    }

    /// A small-dimension model for tests/benches.
    pub fn small(corpus: &CorpusSpec, dim: usize) -> Self {
        Self::new(corpus, dim, 0.7)
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Topic centroid `t` (unit vector).
    pub fn centroid(&self, t: u32) -> &[f32] {
        let t = t as usize % self.topics.max(1) as usize;
        &self.centroids[t * self.dim..(t + 1) * self.dim]
    }

    /// Embedding of paper `id` with topic `topic` (unit vector).
    pub fn embed(&self, id: u64, topic: u32) -> Vec<f32> {
        let mut rng = seed_rng(self.seed ^ STREAM_NOISE, id);
        let c = self.centroid(topic);
        let mut v: Vec<f32> = c
            .iter()
            .map(|&x| x + self.noise_scale * rng.sample::<f32, _>(StandardNormal) / (self.dim as f32).sqrt())
            .collect();
        vq_core::vector::normalize_in_place(&mut v);
        v
    }

    /// Query embedding for a term associated with `topic`.
    ///
    /// Queries sit *near* their topic's cone but are noisier than
    /// documents — a short query phrase is a weaker signal than a full
    /// paper.
    pub fn embed_query(&self, term_id: u64, topic: u32) -> Vec<f32> {
        let mut rng = seed_rng(self.seed ^ STREAM_QUERY, term_id);
        let c = self.centroid(topic);
        let q_noise = self.noise_scale * 1.5;
        let mut v: Vec<f32> = c
            .iter()
            .map(|&x| x + q_noise * rng.sample::<f32, _>(StandardNormal) / (self.dim as f32).sqrt())
            .collect();
        vq_core::vector::normalize_in_place(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vq_core::distance::dot;

    fn model() -> (CorpusSpec, EmbeddingModel) {
        let corpus = CorpusSpec::small(1000);
        let model = EmbeddingModel::small(&corpus, 64);
        (corpus, model)
    }

    #[test]
    fn embeddings_are_unit_and_deterministic() {
        let (_, m) = model();
        let a = m.embed(5, 3);
        let b = m.embed(5, 3);
        assert_eq!(a, b);
        assert!((dot(&a, &a) - 1.0).abs() < 1e-5);
        assert_ne!(m.embed(5, 3), m.embed(6, 3));
    }

    #[test]
    fn same_topic_closer_than_cross_topic() {
        let (_, m) = model();
        let mut same = 0.0;
        let mut cross = 0.0;
        let n = 50;
        for i in 0..n {
            let a = m.embed(i, 1);
            let b = m.embed(1000 + i, 1);
            let c = m.embed(2000 + i, 9);
            same += dot(&a, &b) as f64;
            cross += dot(&a, &c) as f64;
        }
        same /= n as f64;
        cross /= n as f64;
        assert!(
            same > cross + 0.2,
            "intra-topic {same:.3} should beat inter-topic {cross:.3}"
        );
    }

    #[test]
    fn queries_align_with_their_topic() {
        let (_, m) = model();
        let q = m.embed_query(7, 4);
        let to_own = dot(&q, m.centroid(4));
        let to_other = dot(&q, m.centroid(11));
        assert!(to_own > to_other, "{to_own} vs {to_other}");
        assert!((dot(&q, &q) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn centroids_are_spread() {
        let (_, m) = model();
        // Random unit vectors in 64-d: pairwise |cos| well below 0.5.
        for a in 0..8 {
            for b in (a + 1)..8 {
                let d = dot(m.centroid(a), m.centroid(b)).abs();
                assert!(d < 0.6, "centroids {a},{b} too close: {d}");
            }
        }
    }

    #[test]
    fn qwen3_shape() {
        let corpus = CorpusSpec::small(10);
        let m = EmbeddingModel::qwen3_4b(&corpus);
        assert_eq!(m.dim(), 2560);
        assert_eq!(m.embed(0, 0).len(), 2560);
    }
}
