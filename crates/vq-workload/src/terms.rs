//! BV-BRC-like term query workload.
//!
//! The paper queries with "a small subset of 22,723 terms related to
//! genomes available through BV-BRC" (§3). We generate the same-sized
//! synthetic workload: each term is a deterministic genome-flavoured
//! string tied to a corpus topic (skewed like real search traffic), and
//! its query vector comes from the embedding model's query stream.

use crate::corpus::CorpusSpec;
use crate::embedding::EmbeddingModel;
use rand::Rng;
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use vq_core::seed_rng;

/// The paper's term count.
pub const BVBRC_TERM_COUNT: u32 = 22_723;

/// One query term.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Term {
    /// Term index in the workload.
    pub id: u32,
    /// Human-readable term text.
    pub text: String,
    /// Corpus topic the term is about.
    pub topic: u32,
}

/// The generated term workload.
#[derive(Debug, Clone)]
pub struct TermWorkload {
    terms: Vec<Term>,
}

impl TermWorkload {
    /// Generate `count` terms against `corpus` (topics drawn with the
    /// corpus's Zipf skew — popular fields get queried more).
    pub fn generate(corpus: &CorpusSpec, count: u32) -> Self {
        const GENUS: [&str; 12] = [
            "Escherichia", "Salmonella", "Mycobacterium", "Staphylococcus", "Klebsiella",
            "Pseudomonas", "Streptococcus", "Vibrio", "Bacillus", "Helicobacter",
            "Acinetobacter", "Influenza",
        ];
        const FEATURE: [&str; 10] = [
            "genome assembly",
            "antibiotic resistance genes",
            "virulence factors",
            "plasmid content",
            "phage integration sites",
            "CRISPR loci",
            "metabolic pathways",
            "surface proteins",
            "toxin genes",
            "mobile elements",
        ];
        let seed = corpus.seed.stream(4);
        let zipf = Zipf::new(corpus.topics as u64, corpus.topic_skew).expect("valid zipf");
        let terms = (0..count)
            .map(|id| {
                let mut rng = seed_rng(seed, id as u64);
                let topic = (zipf.sample(&mut rng) as u32) - 1;
                let text = format!(
                    "{} strain {:05} {}",
                    GENUS[rng.gen_range(0..GENUS.len())],
                    rng.gen_range(0..100_000),
                    FEATURE[rng.gen_range(0..FEATURE.len())],
                );
                Term { id, text, topic }
            })
            .collect();
        TermWorkload { terms }
    }

    /// The paper-scale workload (22,723 terms).
    pub fn bvbrc(corpus: &CorpusSpec) -> Self {
        Self::generate(corpus, BVBRC_TERM_COUNT)
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Term by index.
    pub fn term(&self, id: u32) -> &Term {
        &self.terms[id as usize]
    }

    /// All terms.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Query vector for term `id` under `model`.
    pub fn query_vector(&self, model: &EmbeddingModel, id: u32) -> Vec<f32> {
        let t = self.term(id);
        model.embed_query(id as u64, t.topic)
    }

    /// All query vectors (in term order).
    pub fn query_vectors(&self, model: &EmbeddingModel) -> Vec<Vec<f32>> {
        self.terms
            .iter()
            .map(|t| model.embed_query(t.id as u64, t.topic))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = CorpusSpec::small(100);
        let a = TermWorkload::generate(&c, 50);
        let b = TermWorkload::generate(&c, 50);
        assert_eq!(a.terms(), b.terms());
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn bvbrc_count_matches_paper() {
        let c = CorpusSpec::small(100);
        let w = TermWorkload::bvbrc(&c);
        assert_eq!(w.len(), 22_723);
    }

    #[test]
    fn terms_look_biological() {
        let c = CorpusSpec::small(100);
        let w = TermWorkload::generate(&c, 10);
        for t in w.terms() {
            assert!(t.text.contains("strain"), "{t:?}");
            assert!(t.topic < c.topics);
        }
    }

    #[test]
    fn query_vectors_unit_and_topic_aligned() {
        let c = CorpusSpec::small(100);
        let m = EmbeddingModel::small(&c, 32);
        let w = TermWorkload::generate(&c, 20);
        let qs = w.query_vectors(&m);
        assert_eq!(qs.len(), 20);
        for (t, q) in w.terms().iter().zip(&qs) {
            let n = vq_core::distance::dot(q, q);
            assert!((n - 1.0).abs() < 1e-5);
            assert_eq!(q, &w.query_vector(&m, t.id));
        }
    }

    #[test]
    fn topic_skew_present() {
        let c = CorpusSpec::small(100);
        let w = TermWorkload::generate(&c, 2000);
        let mut counts = vec![0u32; c.topics as usize];
        for t in w.terms() {
            counts[t.topic as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let mean = 2000 / c.topics;
        assert!(max > 2 * mean, "queries should be skewed: {counts:?}");
    }
}
