//! # vq-workload
//!
//! Deterministic synthetic workloads standing in for the paper's data,
//! per the substitution rules in `DESIGN.md`:
//!
//! * [`corpus`] — a peS2o-like corpus model: 8.29 M "papers" with a
//!   log-normal full-text length distribution and topic labels. Only the
//!   *statistics* matter (the paper measures runtime, not retrieval
//!   quality), so papers are generated lazily from their id.
//! * [`embedding`] — Qwen3-Embedding-4B-shaped vectors: 2560-dim unit
//!   vectors drawn around topic centroids, deterministic per paper id.
//!   Topic structure gives indexes realistic (clustered, not uniform)
//!   geometry.
//! * [`terms`] — a BV-BRC-like query workload: 22,723 genome-related
//!   terms, each yielding a topic-aligned query vector (§3: "Each term is
//!   used to generate a query").
//! * [`dataset`] — glue: size a dataset in GB exactly as the paper does,
//!   iterate its [`Point`](vq_core::Point)s (in parallel for bulk
//!   generation), slice it into upload batches.
//! * [`ground_truth`] — exact search + recall measurement over any
//!   generated dataset.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod corpus;
pub mod dataset;
pub mod embedding;
pub mod ground_truth;
pub mod terms;

pub use corpus::{CorpusSpec, PaperMeta};
pub use dataset::{DatasetSpec, UploadBatches};
pub use embedding::EmbeddingModel;
pub use ground_truth::GroundTruth;
pub use terms::TermWorkload;
