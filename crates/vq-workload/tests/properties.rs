//! Property-based tests for workload generation: determinism, sizing
//! arithmetic, partition/batch coverage for arbitrary parameters.

use proptest::prelude::*;
use vq_workload::{CorpusSpec, DatasetSpec, EmbeddingModel};

fn spec(papers: u64, seed: u64) -> CorpusSpec {
    CorpusSpec::small(papers.max(1000)).seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn papers_deterministic_and_in_bounds(id in 0u64..1000, seed in 0u64..50) {
        let c = spec(1000, seed);
        let a = c.paper(id);
        let b = c.paper(id);
        prop_assert_eq!(a, b);
        prop_assert!((200..=c.max_chars).contains(&a.chars));
        prop_assert!(a.topic < c.topics);
        prop_assert!((1990..=2025).contains(&a.year));
    }

    #[test]
    fn partition_covers_everything_contiguously(
        n in 1u64..5000,
        workers in 1u32..40
    ) {
        let corpus = spec(5000, 1);
        let model = EmbeddingModel::small(&corpus, 8);
        let d = DatasetSpec::with_vectors(corpus, model, n);
        let parts = d.partition(workers);
        prop_assert_eq!(parts.len(), workers as usize);
        // Contiguous, complete, near-even.
        prop_assert_eq!(parts[0].start, 0);
        prop_assert_eq!(parts.last().unwrap().end, n);
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        let sizes: Vec<u64> = parts.iter().map(|r| r.end - r.start).collect();
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1, "uneven partition: {sizes:?}");
    }

    #[test]
    fn upload_batches_cover_exactly_once(
        n in 1u64..3000,
        batch in 1usize..500
    ) {
        let corpus = spec(3000, 2);
        let model = EmbeddingModel::small(&corpus, 8);
        let d = DatasetSpec::with_vectors(corpus, model, n);
        let mut covered = 0u64;
        let mut last_end = 0u64;
        for range in d.upload_batches(batch) {
            prop_assert_eq!(range.start, last_end, "gap or overlap");
            prop_assert!(range.end - range.start <= batch as u64);
            covered += range.end - range.start;
            last_end = range.end;
        }
        prop_assert_eq!(covered, n);
        prop_assert_eq!(last_end, n);
    }

    #[test]
    fn embeddings_unit_norm_for_any_id(id in 0u64..2000, topic in 0u32..16, dim_pow in 3u32..7) {
        let corpus = spec(2000, 3);
        let model = EmbeddingModel::small(&corpus, 1 << dim_pow);
        let v = model.embed(id, topic);
        let n = vq_core::distance::dot(&v, &v);
        prop_assert!((n - 1.0).abs() < 1e-4, "norm² {n}");
        let q = model.embed_query(id, topic);
        let nq = vq_core::distance::dot(&q, &q);
        prop_assert!((nq - 1.0).abs() < 1e-4);
    }

    #[test]
    fn dataset_sizing_never_exceeds_request(gb in 1u64..100) {
        use vq_core::DataSize;
        let corpus = CorpusSpec::pes2o();
        let model = EmbeddingModel::small(&corpus, 2560);
        let d = DatasetSpec::sized(corpus, model, DataSize::gb(gb));
        prop_assert!(d.bytes().0 <= DataSize::gb(gb).0);
        // Within one vector of the requested size (or corpus-capped).
        let slack = DataSize::gb(gb).0 - d.bytes().0;
        prop_assert!(
            slack < 10_312 || d.len() == vq_core::size::PES2O_FULL_VECTORS,
            "slack {slack}"
        );
    }

    #[test]
    fn different_seeds_different_vectors(id in 0u64..500) {
        let c1 = spec(1000, 10);
        let c2 = spec(1000, 11);
        let m1 = EmbeddingModel::small(&c1, 16);
        let m2 = EmbeddingModel::small(&c2, 16);
        prop_assert_ne!(m1.embed(id, 0), m2.embed(id, 0));
    }
}
