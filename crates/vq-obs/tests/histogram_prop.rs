//! Property tests for the log-bucketed histogram: no sample is ever
//! lost, and every reported percentile bound brackets the true
//! nearest-rank quantile of the recorded values.

use proptest::prelude::*;
use vq_obs::{Histogram, HISTOGRAM_BUCKETS};

proptest! {
    #[test]
    fn bucketing_never_loses_a_sample(values in prop::collection::vec(any::<u64>(), 1..500)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            values.len() as u64,
            "every sample must land in exactly one bucket"
        );
        prop_assert_eq!(h.sum(), values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
    }

    #[test]
    fn percentile_bounds_bracket_true_quantile(
        mut values in prop::collection::vec(0u64..1 << 40, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).max(1);
        let truth = values[rank - 1];
        let snap = h.snapshot();
        let (lo, hi) = snap.quantile_bounds(q).expect("non-empty");
        prop_assert!(lo <= truth && truth <= hi, "q={}: {} ≤ {} ≤ {}", q, lo, truth, hi);
        // The headline percentiles are the same machinery.
        prop_assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
    }

    #[test]
    fn bucket_index_roundtrips_bounds(v in any::<u64>()) {
        let i = vq_obs::bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        let (lo, hi) = vq_obs::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{} outside bucket {} = [{}, {}]", v, i, lo, hi);
    }
}
