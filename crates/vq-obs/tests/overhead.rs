//! Disabled-recorder overhead: the instrumentation guard pattern used on
//! the query hot path (`enabled()` check → maybe stamp → maybe record)
//! must add no measurable cost to `score_block` when no recorder is
//! installed — one relaxed atomic load and a branch per call. The same
//! contract holds for the tracing guard (`tracing_enabled()` /
//! `trace_begin_root`): with no tracer installed, the traced shape is
//! branch-only.

use std::hint::black_box;
use std::time::Instant;
use vq_core::Distance;

const DIM: usize = 64;
const ROWS: usize = 256;
const ITERS: usize = 2_000;
const TRIALS: usize = 5;

fn workload() -> (Vec<f32>, Vec<f32>) {
    let query: Vec<f32> = (0..DIM).map(|i| (i as f32).sin()).collect();
    let block: Vec<f32> = (0..DIM * ROWS).map(|i| (i as f32 * 0.37).cos()).collect();
    (query, block)
}

fn time_raw(query: &[f32], block: &[f32]) -> (f64, f32) {
    let mut out = vec![0.0f32; ROWS];
    let mut sink = 0.0f32;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        Distance::Dot.score_block(black_box(query), black_box(block), &mut out);
        sink += out[0];
    }
    (t0.elapsed().as_secs_f64(), sink)
}

fn time_instrumented(query: &[f32], block: &[f32]) -> (f64, f32) {
    let mut out = vec![0.0f32; ROWS];
    let mut sink = 0.0f32;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        // The exact guard shape instrumented call sites use.
        let stamp = vq_obs::enabled().then(Instant::now);
        Distance::Dot.score_block(black_box(query), black_box(block), &mut out);
        if let Some(stamp) = stamp {
            vq_obs::record_phase("score_block", 0, stamp.elapsed().as_secs_f64());
        }
        sink += out[0];
    }
    (t0.elapsed().as_secs_f64(), sink)
}

#[test]
fn disabled_recorder_adds_no_measurable_cost_to_score_block() {
    // This test must own "no recorder installed"; it runs in its own
    // integration-test process, so nothing else can install one.
    vq_obs::uninstall();
    assert!(!vq_obs::enabled());

    let (query, block) = workload();
    // Warm up caches and dispatch.
    let _ = time_raw(&query, &block);
    let _ = time_instrumented(&query, &block);

    let mut best_raw = f64::INFINITY;
    let mut best_inst = f64::INFINITY;
    let mut sinks = 0.0f32;
    for _ in 0..TRIALS {
        let (raw, s1) = time_raw(&query, &block);
        let (inst, s2) = time_instrumented(&query, &block);
        best_raw = best_raw.min(raw);
        best_inst = best_inst.min(inst);
        sinks += s1 + s2;
    }
    assert!(sinks.is_finite(), "keep the scoring loops observable");

    // Generous bound: the guard is one relaxed load + branch per call,
    // far under 50% of a 64-dim × 256-row kernel even on a noisy host.
    // An accidental lock or allocation on the disabled path blows well
    // past this.
    assert!(
        best_inst <= best_raw * 1.5 + 1e-3,
        "disabled-path overhead: instrumented {best_inst:.6}s vs raw {best_raw:.6}s"
    );

    // And nothing was recorded.
    assert_eq!(vq_obs::snapshot(), None);
}

fn time_traced(query: &[f32], block: &[f32]) -> (f64, f32) {
    let mut out = vec![0.0f32; ROWS];
    let mut sink = 0.0f32;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        // The exact guard shape traced call sites use: try to open a
        // root, stamp only if one opened, finish only what was opened.
        let root = vq_obs::trace_begin_root(None);
        let stamp = root.map(|_| Instant::now());
        Distance::Dot.score_block(black_box(query), black_box(block), &mut out);
        if let (Some(root), Some(stamp)) = (root, stamp) {
            vq_obs::trace_finish(&root, "score_block", 0, stamp.elapsed().as_secs_f64());
        }
        sink += out[0];
    }
    (t0.elapsed().as_secs_f64(), sink)
}

#[test]
fn disabled_tracer_adds_no_measurable_cost_to_score_block() {
    // Own "no tracer installed" the same way the recorder test owns the
    // recorder: this is one process, and this test uninstalls first.
    vq_obs::uninstall_tracer();
    assert!(!vq_obs::tracing_enabled());
    assert!(vq_obs::trace_begin_root(None).is_none());
    assert!(vq_obs::trace_begin_here().is_none());
    assert!(vq_obs::trace_current().is_none());

    let (query, block) = workload();
    let _ = time_raw(&query, &block);
    let _ = time_traced(&query, &block);

    let mut best_raw = f64::INFINITY;
    let mut best_traced = f64::INFINITY;
    let mut sinks = 0.0f32;
    for _ in 0..TRIALS {
        let (raw, s1) = time_raw(&query, &block);
        let (traced, s2) = time_traced(&query, &block);
        best_raw = best_raw.min(raw);
        best_traced = best_traced.min(traced);
        sinks += s1 + s2;
    }
    assert!(sinks.is_finite(), "keep the scoring loops observable");

    // Same generous bound as the recorder test: the disabled trace path
    // is one relaxed load + branch; a stray allocation or lock blows it.
    assert!(
        best_traced <= best_raw * 1.5 + 1e-3,
        "disabled-tracing overhead: traced {best_traced:.6}s vs raw {best_raw:.6}s"
    );
}
