//! The metrics registry: name → metric handle, with snapshots.
//!
//! Registration is the only locked operation (a `Mutex<BTreeMap>`); what
//! it hands out are `Arc` handles over the lock-free primitives in
//! [`crate::metrics`]. Call sites register once — typically at
//! construction — and record through the cached handle forever after.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A registered metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Last-write-wins gauge.
    Gauge(Arc<Gauge>),
    /// Log-bucketed histogram.
    Histogram(Arc<Histogram>),
}

/// Name → metric map. Deterministic (sorted) iteration order so exports
/// are diffable.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

/// Render `name{label="value"}` — the one label shape vq uses (per-worker
/// and per-lane breakdowns). The result is a plain registry key; the
/// Prometheus exporter passes it through unchanged.
pub fn labeled(name: &str, label: &str, value: u64) -> String {
    format!("{name}{{{label}=\"{value}\"}}")
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the histogram called `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Point-in-time copy of every metric, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self
            .lock()
            .iter()
            .map(|(name, metric)| SnapshotEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { entries }
    }
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram snapshot (percentile bounds included).
    Histogram(HistogramSnapshot),
}

/// One `(name, value)` pair in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Registry key, possibly with a `{label="v"}` suffix.
    pub name: String,
    /// Frozen value.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole registry, in name order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All entries, sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Look up an entry by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Counter value by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x"), 5);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("z.depth").set(-4);
        r.histogram("a.lat").record(100);
        r.counter("m.total").add(1);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.lat", "m.total", "z.depth"]);
        assert_eq!(snap.get("z.depth"), Some(&MetricValue::Gauge(-4)));
        assert_eq!(snap.histogram("a.lat").unwrap().count, 1);
        assert_eq!(snap.histogram("missing"), None);
        assert_eq!(snap.counter("a.lat"), 0, "wrong kind reads as 0");
    }

    #[test]
    fn labeled_renders_prometheus_style() {
        assert_eq!(labeled("worker.queue_depth", "worker", 3), "worker.queue_depth{worker=\"3\"}");
    }
}
