//! Exporters: hand-rolled JSON and Prometheus text, zero dependencies.
//!
//! The JSON form is what `repro live`/`repro ingest` embed into
//! `results/*.json` (callers with serde parse it into a `Value`); the
//! Prometheus text form is what the `vq` CLI serves/prints for scrape
//! pipelines.

use crate::metrics::HistogramSnapshot;
use crate::registry::{MetricValue, Snapshot};

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        h.count,
        h.sum,
        h.mean(),
        h.p50,
        h.p95,
        h.p99,
        h.max
    )
}

impl Snapshot {
    /// Render the snapshot as one JSON object: metric name → value
    /// (counters and gauges as numbers, histograms as objects with
    /// `count`/`sum`/`mean`/`p50`/`p95`/`p99`/`max`, durations in
    /// nanoseconds).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&json_escape(&e.name));
            out.push_str("\":");
            match &e.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => out.push_str(&histogram_json(h)),
            }
        }
        out.push('}');
        out
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (v0.0.4). Metric names are sanitized (`.` and `-` become `_`);
    /// `{label="v"}` suffixes pass through. Histograms are emitted as a
    /// `_count`/`_sum` pair plus quantile-bound gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let (base, labels) = match e.name.find('{') {
                Some(i) => (&e.name[..i], &e.name[i..]),
                None => (e.name.as_str(), ""),
            };
            let base: String = base
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE vq_{base} counter\nvq_{base}{labels} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE vq_{base} gauge\nvq_{base}{labels} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE vq_{base} summary\n"));
                    for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
                        let sep = if labels.is_empty() {
                            format!("{{quantile=\"{q}\"}}")
                        } else {
                            format!("{},quantile=\"{q}\"}}", &labels[..labels.len() - 1])
                        };
                        out.push_str(&format!("vq_{base}{sep} {v}\n"));
                    }
                    out.push_str(&format!("vq_{base}_sum{labels} {}\n", h.sum));
                    out.push_str(&format!("vq_{base}_count{labels} {}\n", h.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("wal.synced_batches").add(15);
        r.gauge(&crate::labeled("worker.queue_depth", "worker", 2)).set(7);
        let h = r.histogram("phase.gather");
        for v in [100u64, 200, 400, 90_000] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn json_is_parseable_shape() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"wal.synced_batches\":15"));
        assert!(json.contains("\"phase.gather\":{\"kind\":\"histogram\",\"count\":4"));
        assert!(json.contains("\"p50\":"));
        // The labeled gauge name must be escaped as-is inside one key.
        assert!(json.contains("\"worker.queue_depth{worker=\\\"2\\\"}\":7"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prometheus_text_has_types_and_quantiles() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE vq_wal_synced_batches counter"));
        assert!(text.contains("vq_wal_synced_batches 15"));
        assert!(text.contains("vq_worker_queue_depth{worker=\"2\"} 7"));
        assert!(text.contains("# TYPE vq_phase_gather summary"));
        assert!(text.contains("vq_phase_gather{quantile=\"0.5\"}"));
        assert!(text.contains("vq_phase_gather_count 4"));
        assert!(text.contains("vq_phase_gather_sum 90700"));
        // Labeled histogram quantiles merge the label sets.
        let r = Registry::new();
        r.histogram(&crate::labeled("phase.upsert", "worker", 1)).record(5);
        let labeled = r.snapshot().to_prometheus();
        assert!(labeled.contains("vq_phase_upsert{worker=\"1\",quantile=\"0.5\"}"), "{labeled}");
    }
}
