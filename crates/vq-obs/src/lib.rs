//! Observability for vq: metrics registry, phase spans, flight recorder.
//!
//! Every headline finding in the source paper is a diagnosis made from
//! per-phase timings — the 45.64 ms conversion vs 14.86 ms RPC split,
//! the single-worker CPU saturation behind the flat index speedup, the
//! broadcast–reduce overhead that makes multi-worker query lose below a
//! dataset-size crossover. This crate makes that kind of evidence a
//! first-class subsystem instead of bespoke hand-threaded fields:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s with p50/p95/p99 bound extraction. Registration
//!   takes a lock once; recording is lock-free atomics.
//! * **Phase spans** — [`record_phase`] / [`record_phase_at`] /
//!   [`span!`]. Durations are measured by the *caller's* clock (wall
//!   `Instant`s live, the DES engine's sim time virtually), so the same
//!   instrumentation yields comparable traces from both runtimes.
//! * [`FlightRecorder`] — a fixed-capacity ring of recent [`SpanEvent`]s,
//!   dumpable on stall/timeout for post-mortem.
//! * **Distributed tracing** — [`Tracer`] + [`TraceContext`]: per-request
//!   span *trees* with parent links, propagated by thread-local
//!   [`TraceScope`]s within a process and by the `ClusterMsg` envelope /
//!   `x-vq-trace-id` header across fabrics. Head sampling plus tail-keep
//!   (slow traces always retained), exported as Chrome trace-event JSON
//!   and a structured slow-query log. See the [`trace`] module docs.
//! * Exporters — [`Snapshot::to_json`] for `results/*.json`,
//!   [`Snapshot::to_prometheus`] for scrape pipelines.
//!
//! Nothing records until a [`Recorder`] is [`install`]ed (see
//! [`install_from_env`] for the `VQ_OBS` toggles); with none installed
//! every free function is a relaxed load and a branch, cheap enough to
//! leave on the query hot path.
//!
//! ```
//! let recorder = vq_obs::install_default();
//! vq_obs::count("wal.synced_batches", 1);
//! vq_obs::record_phase("gather", 3, 0.0021);
//! let snap = vq_obs::snapshot().unwrap();
//! assert_eq!(snap.counter("wal.synced_batches"), 1);
//! assert_eq!(snap.histogram("phase.gather").unwrap().count, 1);
//! assert_eq!(recorder.flight().events().len(), 1);
//! vq_obs::uninstall();
//! ```

mod export;
mod guard;
mod metrics;
mod recorder;
mod registry;
pub mod trace;

pub use guard::ObsGuard;

pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{
    count, enabled, flight_dump_text, gauge_set, handle_counter, handle_gauge, handle_histogram,
    install, install_default, install_from_env, installed, observe, record_phase, record_phase_at,
    snapshot, uninstall, FlightRecorder, Recorder, SpanEvent, SpanGuard, DEFAULT_FLIGHT_CAPACITY,
};
pub use registry::{labeled, Metric, MetricValue, Registry, Snapshot, SnapshotEntry};
pub use trace::{
    install_tracer, install_tracer_from_env, install_tracer_with, render_trace, trace_begin_here,
    trace_begin_root, trace_child, trace_current, trace_dump_for, trace_finish, trace_finish_at,
    trace_leaf, trace_leaf_at, trace_record, trace_record_at, tracer, tracing_enabled,
    uninstall_tracer, FinishedTrace, TraceConfig, TraceContext, TraceScope, TraceSpan, Tracer,
    TracerStats, DEFAULT_SAMPLE_EVERY, DEFAULT_TAIL_THRESHOLD_SECS, DEFAULT_TRACE_CAPACITY,
};
