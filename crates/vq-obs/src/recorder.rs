//! The global recorder: registry + flight-recorder ring, installable.
//!
//! Nothing records unless a [`Recorder`] is installed: every free
//! function first checks one relaxed `AtomicBool`, so the disabled path
//! costs a load and a predictable branch — cheap enough to leave in
//! `score_block`-adjacent code (the overhead test pins this).
//!
//! Spans are clock-agnostic: the *caller* measures the duration against
//! whatever clock it runs on (wall `Instant`s in the live stack, the DES
//! engine's `SimTime` in the simulated stack) and hands the elapsed
//! seconds to [`record_phase`] / [`record_phase_at`]. Identical
//! instrumentation therefore produces directly comparable traces from
//! both runtimes — the live/simulated divergence becomes measurable per
//! phase.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::registry::{Registry, Snapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default flight-recorder capacity (span events kept for post-mortem).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One recorded span: a named phase with a tag (worker id, lane id, or
/// batch index — site-defined), a start timestamp in the *recording
/// clock's* domain, and a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Monotone sequence number (assigned at record time).
    pub seq: u64,
    /// Phase name (`gather`, `upsert`, `wal_sync`, ...).
    pub name: String,
    /// Site-defined tag (worker id, lane id, batch index).
    pub tag: u64,
    /// Start time in seconds: wall seconds since recorder install for the
    /// live stack, virtual (sim) seconds for the simulated stack.
    pub at_secs: f64,
    /// Span duration in seconds, measured on the caller's clock.
    pub dur_secs: f64,
}

/// Fixed-capacity ring of recent [`SpanEvent`]s, overwriting oldest.
/// Dumpable on stall/timeout for post-mortem (e.g. the 60 s gather
/// timeout in vq-cluster).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

#[derive(Debug, Default)]
struct FlightInner {
    next_seq: u64,
    ring: VecDeque<SpanEvent>,
}

impl FlightRecorder {
    /// Ring holding up to `capacity` events (0 disables event capture;
    /// metrics still record).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            inner: Mutex::new(FlightInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append an event, evicting the oldest when full. Returns whether
    /// an event was evicted, so callers can count truncation (the
    /// `obs.flight_dropped` counter) instead of losing post-mortem
    /// context silently.
    pub fn push(&self, name: &str, tag: u64, at_secs: f64, dur_secs: f64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let evicted = inner.ring.len() == self.capacity;
        if evicted {
            inner.ring.pop_front();
        }
        inner.ring.push_back(SpanEvent {
            seq,
            name: name.to_string(),
            tag,
            at_secs,
            dur_secs,
        });
        evicted
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Total events ever pushed (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Human-readable dump of the retained events, oldest first — the
    /// post-mortem artifact printed on stalls.
    pub fn render(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 48 + 64);
        out.push_str(&format!(
            "flight recorder: {} event(s) retained (cap {})\n",
            events.len(),
            self.capacity
        ));
        for e in &events {
            out.push_str(&format!(
                "  #{:<6} {:<16} tag={:<6} at={:.6}s dur={:.6}s\n",
                e.seq, e.name, e.tag, e.at_secs, e.dur_secs
            ));
        }
        out
    }
}

/// A metrics registry plus a flight-recorder ring: everything one
/// process-wide observability session owns.
#[derive(Debug)]
pub struct Recorder {
    registry: Registry,
    flight: FlightRecorder,
    /// Events evicted from the flight ring — registered eagerly as
    /// `obs.flight_dropped` so it appears (at 0) in every snapshot and
    /// a truncated post-mortem is detectable.
    flight_dropped: Arc<Counter>,
    origin: Instant,
}

impl Recorder {
    /// Recorder with the given flight-ring capacity.
    pub fn new(flight_capacity: usize) -> Self {
        let registry = Registry::new();
        let flight_dropped = registry.counter("obs.flight_dropped");
        Recorder {
            registry,
            flight: FlightRecorder::new(flight_capacity),
            flight_dropped,
            origin: Instant::now(),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight-recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Wall seconds since this recorder was created (the live stack's
    /// span timestamp domain).
    pub fn elapsed_secs(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Arc<Recorder>>> = Mutex::new(None);

/// Whether a recorder is installed. One relaxed load — the guard every
/// instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    INSTALLED.load(Relaxed)
}

/// Install `recorder` as the process-wide recorder (replacing any
/// previous one).
pub fn install(recorder: Arc<Recorder>) {
    let mut slot = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(recorder);
    INSTALLED.store(true, Relaxed);
}

/// Create, install, and return a default recorder.
pub fn install_default() -> Arc<Recorder> {
    let r = Arc::new(Recorder::default());
    install(r.clone());
    r
}

/// Honor the `VQ_OBS` / `VQ_OBS_FLIGHT` environment toggles:
/// `VQ_OBS=0`/`off` returns `None` without installing; anything else
/// installs a recorder whose flight-ring capacity is `VQ_OBS_FLIGHT`
/// (default [`DEFAULT_FLIGHT_CAPACITY`], `0` disables event capture).
pub fn install_from_env() -> Option<Arc<Recorder>> {
    match std::env::var("VQ_OBS").as_deref() {
        Ok("0") | Ok("off") | Ok("false") => return None,
        _ => {}
    }
    let capacity = std::env::var("VQ_OBS_FLIGHT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_FLIGHT_CAPACITY);
    let r = Arc::new(Recorder::new(capacity));
    install(r.clone());
    Some(r)
}

/// Remove the installed recorder, returning it (tests; snapshot-at-end).
pub fn uninstall() -> Option<Arc<Recorder>> {
    let mut slot = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    INSTALLED.store(false, Relaxed);
    slot.take()
}

/// The installed recorder, if any.
pub fn installed() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

// ---------------------------------------------------------------------
// Free recording functions: no-ops when no recorder is installed.
// ---------------------------------------------------------------------

/// Bump the counter `name` by `delta` (no-op when disabled).
pub fn count(name: &str, delta: u64) {
    if let Some(r) = installed() {
        r.registry.counter(name).add(delta);
    }
}

/// Set the gauge `name` (no-op when disabled).
pub fn gauge_set(name: &str, v: i64) {
    if let Some(r) = installed() {
        r.registry.gauge(name).set(v);
    }
}

/// Record `v` into the histogram `name` (no-op when disabled).
pub fn observe(name: &str, v: u64) {
    if let Some(r) = installed() {
        r.registry.histogram(name).record(v);
    }
}

/// Record one phase span measured on the caller's clock: `dur_secs`
/// lands in the `phase.{name}` histogram (as nanoseconds) and a
/// [`SpanEvent`] stamped with wall-seconds-since-install enters the
/// flight ring. Live (wall-clock) call sites use this form.
pub fn record_phase(name: &str, tag: u64, dur_secs: f64) {
    if let Some(r) = installed() {
        let at = r.elapsed_secs() - dur_secs.max(0.0);
        record_into(&r, name, tag, at.max(0.0), dur_secs);
    }
}

/// Like [`record_phase`] but with an explicit start timestamp — the
/// virtual-clock stack passes the DES engine's sim time here so both
/// stacks emit the same span names in their own time domains.
pub fn record_phase_at(name: &str, tag: u64, at_secs: f64, dur_secs: f64) {
    if let Some(r) = installed() {
        record_into(&r, name, tag, at_secs, dur_secs);
    }
}

fn record_into(r: &Recorder, name: &str, tag: u64, at_secs: f64, dur_secs: f64) {
    r.registry
        .histogram(&format!("phase.{name}"))
        .record_secs(dur_secs);
    if r.flight.push(name, tag, at_secs, dur_secs) {
        r.flight_dropped.add(1);
    }
    // When the calling thread is inside a TraceScope, the same phase
    // also lands as a child span in the request's trace tree.
    crate::trace::phase_hook(name, tag, at_secs, dur_secs);
}

/// Cached counter handle: registered in the installed recorder when
/// there is one, otherwise a private (still functional) handle. Sites
/// that must count regardless of observability — e.g. `WorkerInfo`
/// traffic counters — hold one of these.
pub fn handle_counter(name: &str) -> Arc<Counter> {
    match installed() {
        Some(r) => r.registry.counter(name),
        None => Arc::new(Counter::new()),
    }
}

/// Cached gauge handle (see [`handle_counter`]).
pub fn handle_gauge(name: &str) -> Arc<Gauge> {
    match installed() {
        Some(r) => r.registry.gauge(name),
        None => Arc::new(Gauge::new()),
    }
}

/// Cached histogram handle (see [`handle_counter`]).
pub fn handle_histogram(name: &str) -> Arc<Histogram> {
    match installed() {
        Some(r) => r.registry.histogram(name),
        None => Arc::new(Histogram::new()),
    }
}

/// Snapshot of the installed recorder's registry, if any.
pub fn snapshot() -> Option<Snapshot> {
    installed().map(|r| r.registry.snapshot())
}

/// Render the installed recorder's flight ring (stall post-mortems).
pub fn flight_dump_text() -> Option<String> {
    installed().map(|r| r.flight.render())
}

/// RAII span: stamps a wall `Instant` at construction (only when a
/// recorder is installed) and records `phase.{name}` on drop. Built by
/// the [`crate::span!`] macro. Virtual-clock call sites do not use this
/// guard — they know their modeled durations and call
/// [`record_phase_at`] directly.
pub struct SpanGuard {
    name: &'static str,
    tag: u64,
    started: Option<Instant>,
}

impl SpanGuard {
    /// Begin a span (near-no-op when disabled: no `Instant` is taken).
    pub fn begin(name: &'static str, tag: u64) -> Self {
        SpanGuard {
            name,
            tag,
            started: enabled().then(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            record_phase(self.name, self.tag, t0.elapsed().as_secs_f64());
        }
    }
}

/// Open a wall-clock phase span recorded on scope exit:
/// `let _s = span!("gather");` or `let _s = span!("gather", worker = 3);`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::begin($name, 0)
    };
    ($name:expr, $key:ident = $tag:expr) => {
        $crate::SpanGuard::begin($name, $tag as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide state; serialize the tests
    // that install/uninstall it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_path_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!enabled());
        count("x", 1);
        record_phase("p", 0, 0.5);
        assert_eq!(snapshot(), None);
        assert_eq!(flight_dump_text(), None);
        // Private handles still function without a recorder.
        let c = handle_counter("x");
        c.add(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn install_routes_recording_and_uninstall_stops_it() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = install_default();
        count("jobs", 2);
        record_phase("gather", 3, 0.001);
        {
            let _s = span!("scoped", worker = 7);
        }
        let snap = snapshot().unwrap();
        assert_eq!(snap.counter("jobs"), 2);
        assert_eq!(snap.histogram("phase.gather").unwrap().count, 1);
        assert_eq!(snap.histogram("phase.scoped").unwrap().count, 1);
        let events = r.flight().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "gather");
        assert_eq!(events[0].tag, 3);
        assert_eq!(events[1].name, "scoped");
        assert_eq!(events[1].tag, 7);
        assert!(r.flight().render().contains("gather"));
        let back = uninstall().unwrap();
        assert!(Arc::ptr_eq(&back, &r));
        count("jobs", 5);
        assert_eq!(back.registry().snapshot().counter("jobs"), 2, "post-uninstall writes dropped");
    }

    #[test]
    fn flight_ring_evicts_oldest() {
        let f = FlightRecorder::new(3);
        for i in 0..5u64 {
            f.push("e", i, i as f64, 0.0);
        }
        let events = f.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(events[2].seq, 4);
        assert_eq!(f.total_recorded(), 5);
        let disabled = FlightRecorder::new(0);
        disabled.push("e", 0, 0.0, 0.0);
        assert!(disabled.events().is_empty());
    }

    #[test]
    fn flight_eviction_bumps_dropped_counter() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = Arc::new(Recorder::new(2));
        install(r.clone());
        // Registered eagerly: visible at 0 before any eviction.
        assert_eq!(snapshot().unwrap().counter("obs.flight_dropped"), 0);
        for i in 0..5u64 {
            record_phase("p", i, 0.0);
        }
        let snap = snapshot().unwrap();
        assert_eq!(snap.counter("obs.flight_dropped"), 3, "5 pushes into cap-2 ring");
        assert_eq!(r.flight().events().len(), 2);
        uninstall();
    }

    #[test]
    fn phase_at_uses_caller_timestamp() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = install_default();
        record_phase_at("virtual_batch", 1, 42.5, 0.25);
        let e = &r.flight().events()[0];
        assert_eq!(e.at_secs, 42.5);
        assert_eq!(e.dur_secs, 0.25);
        uninstall();
    }
}
