//! Metric primitives: counters, gauges, log-bucketed histograms.
//!
//! Every primitive is a plain atomic cell (or a fixed array of them), so
//! the hot path is lock-free: a counter bump is one relaxed `fetch_add`,
//! a histogram observation is three. Handles are shared as `Arc`s —
//! call sites cache a handle once (registration takes a registry lock)
//! and then record forever without touching shared maps.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins signed gauge (queue depths, occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// Power-of-two histogram buckets: bucket 0 holds the exact value 0,
/// bucket `i` (1..=64) holds `[2^(i-1), 2^i)` — so `u64::MAX` lands in
/// bucket 64 and no observable value can fall outside the range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed latency histogram over `u64` observations (nanoseconds
/// by convention for `phase.*` metrics).
///
/// Percentiles come back as *bounds*: the true nearest-rank quantile is
/// guaranteed to lie inside the bucket the rank falls in, so
/// `lower ≤ true quantile ≤ upper` always holds (the property test pins
/// this, along with "no sample is ever lost").
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for an observation: 0 for 0, `floor(log2(v)) + 1`
/// otherwise.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Record a duration given in seconds, stored as nanoseconds.
    #[inline]
    pub fn record_secs(&self, secs: f64) {
        self.record((secs.max(0.0) * 1e9) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations (total nanoseconds for phase histograms).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Point-in-time copy of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// Immutable snapshot with percentile bounds extracted.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::from_buckets(self.bucket_counts(), self.sum())
    }
}

/// Frozen view of a [`Histogram`] with nearest-rank percentile bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Upper bound of the bucket holding the nearest-rank p50.
    pub p50: u64,
    /// Upper bound of the bucket holding the nearest-rank p95.
    pub p95: u64,
    /// Upper bound of the bucket holding the nearest-rank p99.
    pub p99: u64,
    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub max: u64,
    /// Bucket occupancy at snapshot time.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Build a snapshot from raw bucket counts.
    pub fn from_buckets(buckets: [u64; HISTOGRAM_BUCKETS], sum: u64) -> Self {
        let count: u64 = buckets.iter().sum();
        let upper = |q: f64| quantile_bounds_from(&buckets, count, q).map_or(0, |(_, hi)| hi);
        let max = buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| bucket_bounds(i).1);
        HistogramSnapshot {
            count,
            sum,
            p50: upper(0.50),
            p95: upper(0.95),
            p99: upper(0.99),
            max,
            buckets,
        }
    }

    /// `(lower, upper)` bounds bracketing the nearest-rank `q`-quantile
    /// (`q` in `0.0..=1.0`); `None` when the histogram is empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        quantile_bounds_from(&self.buckets, self.count, q)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

fn quantile_bounds_from(
    buckets: &[u64; HISTOGRAM_BUCKETS],
    count: u64,
    q: f64,
) -> Option<(u64, u64)> {
    if count == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return Some(bucket_bounds(i));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_shifted() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_never_loses_samples_deterministic() {
        // A cheap splitmix-style stream covering many magnitudes.
        let h = Histogram::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut values = Vec::new();
        for i in 0..10_000u64 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i);
            let v = x >> (x % 60); // spread across bucket range
            values.push(v);
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.sum(), values.iter().copied().fold(0u64, u64::wrapping_add));
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
    }

    #[test]
    fn percentile_bounds_bracket_true_quantile() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..1000u64).map(|i| i * i + 1).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let truth = values[rank - 1];
            let (lo, hi) = snap.quantile_bounds(q).unwrap();
            assert!(lo <= truth && truth <= hi, "q={q}: {lo} ≤ {truth} ≤ {hi}");
        }
        assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p99, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.quantile_bounds(0.5), None);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn record_secs_stores_nanos() {
        let h = Histogram::new();
        h.record_secs(1.5e-6);
        assert_eq!(h.sum(), 1_500);
        h.record_secs(-1.0); // clamped, never underflows
        assert_eq!(h.count(), 2);
    }
}
