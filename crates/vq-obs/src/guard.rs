//! RAII installation guard for the process-global recorder and tracer.
//!
//! The recorder and tracer are process-wide singletons; a test that
//! installs one and panics (or simply forgets to `uninstall`) leaks it
//! into every later test in the same binary, turning "works alone,
//! fails in the suite" into a recurring bug class. [`ObsGuard`] ties
//! the install to a scope: construction installs, drop uninstalls —
//! including on panic, since drops run during unwinding.
//!
//! ```
//! let obs = vq_obs::ObsGuard::install_default();
//! vq_obs::count("jobs", 1);
//! assert_eq!(obs.recorder().registry().snapshot().counter("jobs"), 1);
//! // Drop uninstalls; the next test starts clean.
//! ```

use crate::recorder::{install, install_default, uninstall, Recorder};
use crate::trace::{install_tracer_with, uninstall_tracer, TraceConfig, Tracer};
use std::sync::Arc;

/// Scoped ownership of the global recorder (and optionally the global
/// tracer): whatever this guard installed is uninstalled on drop, even
/// when the owning test panics.
pub struct ObsGuard {
    recorder: Arc<Recorder>,
    tracer: Option<Arc<Tracer>>,
}

impl ObsGuard {
    /// Install a fresh default recorder for this scope.
    pub fn install_default() -> Self {
        ObsGuard {
            recorder: install_default(),
            tracer: None,
        }
    }

    /// Install a caller-built recorder (custom flight capacity, shared
    /// handles, ...) for this scope.
    pub fn install(recorder: Arc<Recorder>) -> Self {
        install(recorder.clone());
        ObsGuard {
            recorder,
            tracer: None,
        }
    }

    /// Additionally install a tracer for this scope (uninstalled on drop
    /// alongside the recorder).
    pub fn with_tracer(mut self, config: TraceConfig) -> Self {
        self.tracer = Some(install_tracer_with(config));
        self
    }

    /// The recorder this guard installed (snapshot-at-end inspection).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The tracer this guard installed, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if self.tracer.is_some() {
            uninstall_tracer();
        }
        uninstall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{enabled, snapshot};
    use crate::trace::tracing_enabled;

    #[test]
    fn guard_uninstalls_on_drop() {
        {
            let obs = ObsGuard::install_default();
            crate::count("guarded", 3);
            assert!(enabled());
            assert_eq!(
                obs.recorder().registry().snapshot().counter("guarded"),
                3
            );
            let traced = ObsGuard::install(obs.recorder().clone())
                .with_tracer(TraceConfig::default());
            assert!(tracing_enabled());
            drop(traced);
            assert!(!tracing_enabled(), "tracer removed with its guard");
        }
        assert!(!enabled(), "recorder removed with its guard");
        assert_eq!(snapshot(), None);
    }
}
