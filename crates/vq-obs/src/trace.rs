//! Distributed request tracing: per-request span trees with cross-fabric
//! context propagation.
//!
//! The metrics registry answers "how long does `gather` take on
//! average"; it cannot answer "which phase made *this* p99 request
//! slow". Tracing fills that gap: every traced request owns a
//! [`TraceContext`] — a `trace_id` naming the request plus the
//! `span_id` of the currently open span — and every phase recorded
//! under that context becomes a [`TraceSpan`] with a parent link, so a
//! search reconstructs as one tree: server edge → coordinator root →
//! one child span per shard per worker → gather.
//!
//! **Propagation.** Within a thread the context rides a thread-local
//! (see [`TraceScope`]); [`record_phase`](crate::record_phase) /
//! [`record_phase_at`](crate::record_phase_at) consult it, so existing
//! instrumentation sites become child spans with no signature changes.
//! Across the cluster fabric the context travels as an optional field
//! in the `ClusterMsg` envelope (both the in-process switchboard and
//! the TCP transport carry it); across REST it travels as the
//! `x-vq-trace-id` header and is echoed in the response envelope.
//!
//! **Sampling.** Head sampling keeps every `sample_every`-th trace;
//! tail-keep *always* retains a trace slower than
//! `tail_threshold_secs`, regardless of the head decision — the p99
//! exemplars a post-mortem needs. Spans are buffered for every trace
//! while it is in flight; the keep/drop decision happens once, when the
//! root span closes and the duration is known.
//!
//! **Clocks.** Like the rest of vq-obs, spans are clock-agnostic: the
//! wall-clock stack stamps real seconds since recorder install, the DES
//! stack passes sim time through the `_at` variants. A wall trace and a
//! virtual trace of the same plan are structurally identical.
//!
//! **Cost.** Nothing here runs unless a [`Tracer`] is installed: every
//! entry point first checks one relaxed `AtomicBool`, the same
//! discipline (and the same overhead test) as the recorder itself.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default finished-trace ring capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;
/// Default head-sampling period (keep every Nth trace; 0 disables head
/// sampling so only tail-keep retains traces).
pub const DEFAULT_SAMPLE_EVERY: u64 = 1;
/// Default tail-keep threshold in seconds: traces slower than this are
/// always retained.
pub const DEFAULT_TAIL_THRESHOLD_SECS: f64 = 0.050;
/// Spans buffered per trace before truncation.
const MAX_SPANS_PER_TRACE: usize = 512;
/// In-flight traces tracked before new ones go unbuffered.
const MAX_ACTIVE_TRACES: usize = 1024;
/// Spans printed by a bounded per-trace dump (gather-stall post-mortems).
const DUMP_SPAN_LIMIT: usize = 64;

/// The propagated identity of one request's trace position: which trace
/// this is, which span is currently open (children parent onto it), and
/// the open span's own parent (`0` for a root). `sampled` carries the
/// head-sampling verdict made at the root so remote participants don't
/// re-decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace (request) identity; never 0.
    pub trace_id: u64,
    /// The currently open span — new children parent onto this.
    pub span_id: u64,
    /// The open span's own parent (0 = root).
    pub parent_id: u64,
    /// Head-sampling verdict from the root (tail-keep may still retain
    /// an unsampled trace).
    pub sampled: bool,
}

impl TraceContext {
    /// Rebuild a context received from the wire: the remote side's open
    /// span becomes the local parent. The local side does not know (or
    /// need) the remote span's own parent.
    pub fn remote(trace_id: u64, span_id: u64, sampled: bool) -> Self {
        TraceContext {
            trace_id,
            span_id,
            parent_id: 0,
            sampled,
        }
    }
}

/// One closed span in a trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Owning trace.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Phase name (`rest_edge`, `coordinate`, `shard_search`, ...).
    pub name: String,
    /// Site-defined tag — worker id for cluster spans, lane id for
    /// client spans.
    pub tag: u64,
    /// Shard this span covers, when it covers exactly one.
    pub shard: Option<u64>,
    /// Start time in the recording clock's domain (wall seconds since
    /// recorder install, or sim seconds).
    pub at_secs: f64,
    /// Duration in seconds.
    pub dur_secs: f64,
}

/// A completed, retained trace: the root's identity and duration plus
/// every buffered span (root included).
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// Trace identity.
    pub trace_id: u64,
    /// Root span name.
    pub root_name: String,
    /// Root (request) duration in seconds.
    pub dur_secs: f64,
    /// Head-sampling verdict.
    pub sampled: bool,
    /// Whether tail-keep (duration over threshold) retained this trace.
    pub tail_kept: bool,
    /// All spans, in record order; the root span is last.
    pub spans: Vec<TraceSpan>,
}

impl FinishedTrace {
    /// Per-phase *self* time: each span's duration minus its children's,
    /// clamped at zero, summed by name. Self time is what critical-path
    /// attribution wants — a `coordinate` span that spends 90 % of its
    /// duration inside `gather` should attribute the tail to `gather`.
    pub fn phase_self_secs(&self) -> Vec<(String, f64)> {
        let mut child_sum: HashMap<u64, f64> = HashMap::new();
        for s in &self.spans {
            if s.parent_id != 0 {
                *child_sum.entry(s.parent_id).or_insert(0.0) += s.dur_secs;
            }
        }
        let mut by_name: HashMap<&str, f64> = HashMap::new();
        for s in &self.spans {
            let own = (s.dur_secs - child_sum.get(&s.span_id).copied().unwrap_or(0.0)).max(0.0);
            *by_name.entry(s.name.as_str()).or_insert(0.0) += own;
        }
        let mut out: Vec<(String, f64)> =
            by_name.into_iter().map(|(n, v)| (n.to_string(), v)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Whether every non-root span's parent exists in this trace — the
    /// "ids intact across the wire" check.
    pub fn well_parented(&self) -> bool {
        let ids: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.span_id).collect();
        self.spans
            .iter()
            .all(|s| s.parent_id == 0 || ids.contains(&s.parent_id))
    }
}

/// Sampling and retention policy for a [`Tracer`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Keep every Nth trace at the head (1 = all, 0 = head sampling
    /// off — only tail-keep retains).
    pub sample_every: u64,
    /// Always retain traces slower than this many seconds.
    pub tail_threshold_secs: f64,
    /// Finished traces retained (ring; oldest evicted).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: DEFAULT_SAMPLE_EVERY,
            tail_threshold_secs: DEFAULT_TAIL_THRESHOLD_SECS,
            capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Counters describing what a [`Tracer`] has seen and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracerStats {
    /// Traces begun.
    pub started: u64,
    /// Traces retained because head sampling selected them.
    pub kept_head: u64,
    /// Traces retained *only* because they crossed the tail threshold.
    pub kept_tail: u64,
    /// Traces finished and discarded (unsampled and fast).
    pub discarded: u64,
    /// Retained traces evicted from the finished ring.
    pub evicted: u64,
    /// Spans dropped because their trace was unknown or over budget.
    pub dropped_spans: u64,
}

#[derive(Default)]
struct TracerInner {
    active: HashMap<u64, Vec<TraceSpan>>,
    finished: VecDeque<FinishedTrace>,
}

/// Process-wide span-tree store: in-flight traces buffer spans, closed
/// roots decide retention (head sample or tail-keep), retained traces
/// sit in a bounded ring for export.
pub struct Tracer {
    config: TraceConfig,
    origin: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    started: AtomicU64,
    kept_head: AtomicU64,
    kept_tail: AtomicU64,
    discarded: AtomicU64,
    evicted: AtomicU64,
    dropped_spans: AtomicU64,
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// Tracer with the given sampling/retention policy.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            config,
            origin: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            started: AtomicU64::new(0),
            kept_head: AtomicU64::new(0),
            kept_tail: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            dropped_spans: AtomicU64::new(0),
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// The active policy.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn alloc_span(&self) -> u64 {
        self.next_span.fetch_add(1, Relaxed)
    }

    /// Seconds on the wall timeline shared with the recorder: the
    /// recorder's origin when one is installed (so explicit trace spans
    /// and phase-hook spans line up), this tracer's own otherwise.
    pub fn wall_now_secs(&self) -> f64 {
        match crate::installed() {
            Some(r) => r.elapsed_secs(),
            None => self.origin.elapsed().as_secs_f64(),
        }
    }

    /// Begin a new root trace. The head-sampling verdict is made here
    /// and travels in the returned context.
    pub fn begin(&self) -> TraceContext {
        let id = self.next_trace.fetch_add(1, Relaxed);
        self.begin_registered(id)
    }

    /// Begin a root trace under an externally supplied id (REST clients
    /// propagating `x-vq-trace-id`). Falls back to a fresh id when the
    /// requested one is already in flight.
    pub fn begin_with_id(&self, trace_id: u64) -> TraceContext {
        let in_flight = trace_id == 0 || self.lock().active.contains_key(&trace_id);
        if in_flight {
            return self.begin();
        }
        self.begin_registered(trace_id)
    }

    fn begin_registered(&self, trace_id: u64) -> TraceContext {
        let seq = self.started.fetch_add(1, Relaxed);
        let sampled = self.config.sample_every != 0 && seq % self.config.sample_every == 0;
        let span_id = self.alloc_span();
        {
            let mut inner = self.lock();
            if inner.active.len() < MAX_ACTIVE_TRACES {
                inner.active.insert(trace_id, Vec::new());
            }
        }
        TraceContext {
            trace_id,
            span_id,
            parent_id: 0,
            sampled,
        }
    }

    /// Open a child span under `parent`: allocates an id, records
    /// nothing yet. Close it with [`Tracer::record`].
    pub fn child(&self, parent: &TraceContext) -> TraceContext {
        TraceContext {
            trace_id: parent.trace_id,
            span_id: self.alloc_span(),
            parent_id: parent.span_id,
            sampled: parent.sampled,
        }
    }

    /// Record `ctx`'s own span (the one its `span_id` names) as closed.
    pub fn record(
        &self,
        ctx: &TraceContext,
        name: &str,
        tag: u64,
        shard: Option<u64>,
        at_secs: f64,
        dur_secs: f64,
    ) {
        self.push_span(TraceSpan {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            name: name.to_string(),
            tag,
            shard,
            at_secs,
            dur_secs,
        });
    }

    /// Record a closed leaf span under `parent` in one step (what the
    /// `record_phase` hook uses).
    pub fn leaf(
        &self,
        parent: &TraceContext,
        name: &str,
        tag: u64,
        shard: Option<u64>,
        at_secs: f64,
        dur_secs: f64,
    ) {
        self.push_span(TraceSpan {
            trace_id: parent.trace_id,
            span_id: self.alloc_span(),
            parent_id: parent.span_id,
            name: name.to_string(),
            tag,
            shard,
            at_secs,
            dur_secs,
        });
    }

    fn push_span(&self, span: TraceSpan) {
        let mut inner = self.lock();
        match inner.active.get_mut(&span.trace_id) {
            Some(spans) if spans.len() < MAX_SPANS_PER_TRACE => spans.push(span),
            _ => {
                self.dropped_spans.fetch_add(1, Relaxed);
            }
        }
    }

    /// Close the root: record its span, then decide retention — keep
    /// when head-sampled OR slower than the tail threshold; the second
    /// arm is what guarantees p99 exemplars survive aggressive head
    /// sampling.
    pub fn finish(
        &self,
        root: &TraceContext,
        name: &str,
        tag: u64,
        at_secs: f64,
        dur_secs: f64,
    ) {
        let tail = dur_secs >= self.config.tail_threshold_secs;
        let keep = root.sampled || tail;
        let mut inner = self.lock();
        let mut spans = inner.active.remove(&root.trace_id).unwrap_or_default();
        if !keep {
            self.discarded.fetch_add(1, Relaxed);
            return;
        }
        if root.sampled {
            self.kept_head.fetch_add(1, Relaxed);
        } else {
            self.kept_tail.fetch_add(1, Relaxed);
        }
        spans.push(TraceSpan {
            trace_id: root.trace_id,
            span_id: root.span_id,
            parent_id: 0,
            name: name.to_string(),
            tag,
            shard: None,
            at_secs,
            dur_secs,
        });
        if inner.finished.len() == self.config.capacity.max(1) {
            inner.finished.pop_front();
            self.evicted.fetch_add(1, Relaxed);
        }
        inner.finished.push_back(FinishedTrace {
            trace_id: root.trace_id,
            root_name: name.to_string(),
            dur_secs,
            sampled: root.sampled,
            tail_kept: tail && !root.sampled,
            spans,
        });
    }

    /// Retained traces, oldest first.
    pub fn finished(&self) -> Vec<FinishedTrace> {
        self.lock().finished.iter().cloned().collect()
    }

    /// Every buffered span of one trace — in flight or retained. Empty
    /// when the trace is unknown (never sampled in, or discarded).
    pub fn spans_for(&self, trace_id: u64) -> Vec<TraceSpan> {
        let inner = self.lock();
        if let Some(spans) = inner.active.get(&trace_id) {
            return spans.clone();
        }
        inner
            .finished
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .map(|t| t.spans.clone())
            .unwrap_or_default()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TracerStats {
        TracerStats {
            started: self.started.load(Relaxed),
            kept_head: self.kept_head.load(Relaxed),
            kept_tail: self.kept_tail.load(Relaxed),
            discarded: self.discarded.load(Relaxed),
            evicted: self.evicted.load(Relaxed),
            dropped_spans: self.dropped_spans.load(Relaxed),
        }
    }

    /// Retained traces as Chrome trace-event JSON (the `traceEvents`
    /// array format; loads in Perfetto / `chrome://tracing`). Complete
    /// (`ph:"X"`) events, microsecond timestamps, `tid` = span tag.
    pub fn to_chrome_json(&self) -> String {
        let traces = self.finished();
        let mut out = String::with_capacity(256 + traces.len() * 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for t in &traces {
            for s in &t.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\":{},\"cat\":\"vq\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":{},\
                     \"parent_id\":{}{}}}}}",
                    json_string(&s.name),
                    s.at_secs * 1e6,
                    s.dur_secs * 1e6,
                    s.tag,
                    s.trace_id,
                    s.span_id,
                    s.parent_id,
                    s.shard
                        .map(|sh| format!(",\"shard\":{sh}"))
                        .unwrap_or_default(),
                ));
            }
        }
        out.push_str("]}");
        out
    }

    /// Structured slow-query log: one `key=value` line per tail-kept
    /// trace (the requests head sampling would have missed), slowest
    /// last, with a self-time phase breakdown.
    pub fn slow_query_log(&self) -> String {
        let mut out = String::new();
        for t in self.finished().iter().filter(|t| t.tail_kept) {
            let phases = t
                .phase_self_secs()
                .iter()
                .take(5)
                .map(|(n, s)| format!("{n}={:.3}ms", s * 1e3))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "slow_query trace={:016x} root={} dur_ms={:.3} spans={} phases={phases}\n",
                t.trace_id,
                t.root_name,
                t.dur_secs * 1e3,
                t.spans.len(),
            ));
        }
        out
    }

    /// Human-readable tree dump of the retained traces, oldest first.
    pub fn render(&self) -> String {
        let traces = self.finished();
        let mut out = format!("tracer: {} trace(s) retained\n", traces.len());
        for t in &traces {
            out.push_str(&render_trace(t));
        }
        out
    }
}

/// Render one trace as an indented tree (children under parents, record
/// order preserved within a level).
pub fn render_trace(t: &FinishedTrace) -> String {
    let mut children: HashMap<u64, Vec<&TraceSpan>> = HashMap::new();
    let mut roots: Vec<&TraceSpan> = Vec::new();
    let ids: std::collections::HashSet<u64> = t.spans.iter().map(|s| s.span_id).collect();
    for s in &t.spans {
        if s.parent_id != 0 && ids.contains(&s.parent_id) {
            children.entry(s.parent_id).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    let mut out = format!(
        "trace {:016x} root={} dur={:.3}ms{}{}\n",
        t.trace_id,
        t.root_name,
        t.dur_secs * 1e3,
        if t.sampled { " [sampled]" } else { "" },
        if t.tail_kept { " [tail]" } else { "" },
    );
    fn walk(
        s: &TraceSpan,
        depth: usize,
        children: &HashMap<u64, Vec<&TraceSpan>>,
        out: &mut String,
    ) {
        let shard = s.shard.map(|sh| format!(" shard={sh}")).unwrap_or_default();
        out.push_str(&format!(
            "{:indent$}{} tag={}{} at={:.6}s dur={:.3}ms\n",
            "",
            s.name,
            s.tag,
            shard,
            s.at_secs,
            s.dur_secs * 1e3,
            indent = 2 + depth * 2,
        ));
        for c in children.get(&s.span_id).into_iter().flatten() {
            walk(c, depth + 1, children, out);
        }
    }
    for r in roots {
        walk(r, 0, &children, &mut out);
    }
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Global install + thread-local propagation.
// ---------------------------------------------------------------------

static TRACING: AtomicBool = AtomicBool::new(false);
static GLOBAL_TRACER: Mutex<Option<Arc<Tracer>>> = Mutex::new(None);

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Whether a tracer is installed. One relaxed load — the guard every
/// tracing entry point checks first, so disabled tracing stays
/// branch-only (the overhead test pins this together with the
/// recorder's guard).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Relaxed)
}

/// Install `tracer` as the process-wide tracer (replacing any previous).
pub fn install_tracer(tracer: Arc<Tracer>) {
    let mut slot = GLOBAL_TRACER.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(tracer);
    TRACING.store(true, Relaxed);
}

/// Create, install, and return a tracer with `config`.
pub fn install_tracer_with(config: TraceConfig) -> Arc<Tracer> {
    let t = Arc::new(Tracer::new(config));
    install_tracer(t.clone());
    t
}

/// Honor the `VQ_TRACE` environment toggles: unset/`0`/`off` installs
/// nothing (tracing stays branch-only); anything else installs a tracer
/// whose policy reads `VQ_TRACE_SAMPLE` (head period),
/// `VQ_TRACE_TAIL_MS` (tail-keep threshold) and `VQ_TRACE_CAP`
/// (finished ring capacity).
pub fn install_tracer_from_env() -> Option<Arc<Tracer>> {
    match std::env::var("VQ_TRACE").as_deref() {
        Ok("0") | Ok("off") | Ok("false") | Err(_) => return None,
        _ => {}
    }
    let mut config = TraceConfig::default();
    if let Some(v) = std::env::var("VQ_TRACE_SAMPLE").ok().and_then(|v| v.parse().ok()) {
        config.sample_every = v;
    }
    if let Some(ms) = std::env::var("VQ_TRACE_TAIL_MS").ok().and_then(|v| v.parse::<f64>().ok()) {
        config.tail_threshold_secs = ms / 1e3;
    }
    if let Some(v) = std::env::var("VQ_TRACE_CAP").ok().and_then(|v| v.parse().ok()) {
        config.capacity = v;
    }
    Some(install_tracer_with(config))
}

/// Remove the installed tracer, returning it (tests; export-at-end).
pub fn uninstall_tracer() -> Option<Arc<Tracer>> {
    let mut slot = GLOBAL_TRACER.lock().unwrap_or_else(|e| e.into_inner());
    TRACING.store(false, Relaxed);
    slot.take()
}

/// The installed tracer, if any.
pub fn tracer() -> Option<Arc<Tracer>> {
    if !tracing_enabled() {
        return None;
    }
    GLOBAL_TRACER.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The calling thread's current trace context, if inside a
/// [`TraceScope`].
pub fn trace_current() -> Option<TraceContext> {
    if !tracing_enabled() {
        return None;
    }
    CURRENT.with(Cell::get)
}

/// RAII guard installing `ctx` as the calling thread's current trace
/// context; restores the previous context on drop. While a scope is
/// active, every `record_phase`/`record_phase_at` on this thread
/// records a child span of `ctx` alongside its histogram entry.
pub struct TraceScope {
    prev: Option<TraceContext>,
}

impl TraceScope {
    /// Enter `ctx` on this thread.
    pub fn enter(ctx: TraceContext) -> Self {
        let prev = CURRENT.with(|c| c.replace(Some(ctx)));
        TraceScope { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev.take()));
    }
}

// ---------------------------------------------------------------------
// Free helpers: no-ops (None) when no tracer is installed.
// ---------------------------------------------------------------------

/// Begin a span here: a child of the thread's current context when one
/// is active (`false`), else a fresh root trace (`true`). `None` when
/// no tracer is installed.
pub fn trace_begin_here() -> Option<(TraceContext, bool)> {
    let t = tracer()?;
    match trace_current() {
        Some(cur) => Some((t.child(&cur), false)),
        None => Some((t.begin(), true)),
    }
}

/// Begin a root trace, adopting `trace_id` when supplied (REST header
/// propagation). `None` when no tracer is installed.
pub fn trace_begin_root(trace_id: Option<u64>) -> Option<TraceContext> {
    let t = tracer()?;
    Some(match trace_id {
        Some(id) => t.begin_with_id(id),
        None => t.begin(),
    })
}

/// Open a child span of a context that arrived over the wire. `None`
/// when no tracer is installed.
pub fn trace_child(parent: &TraceContext) -> Option<TraceContext> {
    tracer().map(|t| t.child(parent))
}

/// Close `ctx`'s own span, measured on the wall clock ending now.
pub fn trace_record(ctx: &TraceContext, name: &str, tag: u64, dur_secs: f64) {
    if let Some(t) = tracer() {
        let at = (t.wall_now_secs() - dur_secs.max(0.0)).max(0.0);
        t.record(ctx, name, tag, None, at, dur_secs);
    }
}

/// Close `ctx`'s own span with an explicit timestamp (virtual clock).
pub fn trace_record_at(ctx: &TraceContext, name: &str, tag: u64, at_secs: f64, dur_secs: f64) {
    if let Some(t) = tracer() {
        t.record(ctx, name, tag, None, at_secs, dur_secs);
    }
}

/// Record a closed leaf span under `parent`, measured on the wall clock
/// ending now; `shard` tags spans that cover exactly one shard.
pub fn trace_leaf(parent: &TraceContext, name: &str, tag: u64, shard: Option<u64>, dur_secs: f64) {
    if let Some(t) = tracer() {
        let at = (t.wall_now_secs() - dur_secs.max(0.0)).max(0.0);
        t.leaf(parent, name, tag, shard, at, dur_secs);
    }
}

/// Record a closed leaf span under `parent` with an explicit timestamp.
pub fn trace_leaf_at(
    parent: &TraceContext,
    name: &str,
    tag: u64,
    shard: Option<u64>,
    at_secs: f64,
    dur_secs: f64,
) {
    if let Some(t) = tracer() {
        t.leaf(parent, name, tag, shard, at_secs, dur_secs);
    }
}

/// Close a root span, measured on the wall clock ending now, and decide
/// retention (head sample / tail-keep).
pub fn trace_finish(root: &TraceContext, name: &str, tag: u64, dur_secs: f64) {
    if let Some(t) = tracer() {
        let at = (t.wall_now_secs() - dur_secs.max(0.0)).max(0.0);
        t.finish(root, name, tag, at, dur_secs);
    }
}

/// Close a root span with an explicit timestamp (virtual clock) and
/// decide retention.
pub fn trace_finish_at(root: &TraceContext, name: &str, tag: u64, at_secs: f64, dur_secs: f64) {
    if let Some(t) = tracer() {
        t.finish(root, name, tag, at_secs, dur_secs);
    }
}

/// Bounded dump of one trace's buffered spans (in flight or retained):
/// the gather-stall post-mortem artifact. `None` when no tracer is
/// installed or the trace is unknown.
pub fn trace_dump_for(trace_id: u64) -> Option<String> {
    let t = tracer()?;
    let spans = t.spans_for(trace_id);
    if spans.is_empty() {
        return None;
    }
    let shown = spans.len().min(DUMP_SPAN_LIMIT);
    let mut out = format!(
        "trace {:016x}: {} span(s) buffered{}\n",
        trace_id,
        spans.len(),
        if spans.len() > shown {
            format!(", showing first {shown}")
        } else {
            String::new()
        },
    );
    for s in spans.iter().take(shown) {
        let shard = s.shard.map(|sh| format!(" shard={sh}")).unwrap_or_default();
        out.push_str(&format!(
            "  span {:<5} parent {:<5} {:<16} tag={}{} at={:.6}s dur={:.6}s\n",
            s.span_id, s.parent_id, s.name, s.tag, shard, s.at_secs, s.dur_secs
        ));
    }
    Some(out)
}

/// Hook called by `record_phase`/`record_phase_at`: when the calling
/// thread is inside a [`TraceScope`], the phase also lands as a child
/// span of the current context. Branch-only when tracing is off.
#[inline]
pub(crate) fn phase_hook(name: &str, tag: u64, at_secs: f64, dur_secs: f64) {
    if !tracing_enabled() {
        return;
    }
    let Some(ctx) = CURRENT.with(Cell::get) else {
        return;
    };
    if let Some(t) = tracer() {
        t.leaf(&ctx, name, tag, None, at_secs, dur_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global tracer is process-wide; serialize the tests that
    // install/uninstall it (shared with the recorder's own lock would
    // be overkill — these tests don't touch the recorder).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn tracer_with(sample_every: u64, tail_ms: f64) -> Tracer {
        Tracer::new(TraceConfig {
            sample_every,
            tail_threshold_secs: tail_ms / 1e3,
            capacity: 8,
        })
    }

    #[test]
    fn span_tree_assembles_with_parent_links() {
        let t = tracer_with(1, 1e9);
        let root = t.begin();
        assert!(root.sampled);
        let coord = t.child(&root);
        assert_eq!(coord.parent_id, root.span_id);
        t.leaf(&coord, "queue_wait", 3, None, 0.0, 0.001);
        t.leaf(&coord, "shard_search", 3, Some(1), 0.001, 0.004);
        t.record(&coord, "coordinate", 3, None, 0.0, 0.006);
        t.finish(&root, "client_search", 0, 0.0, 0.008);
        let finished = t.finished();
        assert_eq!(finished.len(), 1);
        let tr = &finished[0];
        assert_eq!(tr.root_name, "client_search");
        assert!(tr.well_parented());
        assert_eq!(tr.spans.len(), 4);
        let shard = tr.spans.iter().find(|s| s.name == "shard_search").unwrap();
        assert_eq!(shard.parent_id, coord.span_id);
        assert_eq!(shard.shard, Some(1));
        // Self-time attribution: coordinate's 6ms minus 5ms of children.
        let attribution = tr.phase_self_secs();
        let coord_self = attribution.iter().find(|(n, _)| n == "coordinate").unwrap();
        assert!((coord_self.1 - 0.001).abs() < 1e-9);
    }

    #[test]
    fn head_sampling_and_tail_keep() {
        // Head: every 2nd trace; tail: anything over 10ms.
        let t = tracer_with(2, 10.0);
        let a = t.begin(); // seq 0 → sampled
        let b = t.begin(); // seq 1 → unsampled
        let c = t.begin(); // seq 2 → sampled
        let d = t.begin(); // seq 3 → unsampled but slow
        assert!(a.sampled && !b.sampled && c.sampled && !d.sampled);
        t.finish(&a, "r", 0, 0.0, 0.001);
        t.finish(&b, "r", 0, 0.0, 0.001); // fast + unsampled → dropped
        t.finish(&c, "r", 0, 0.0, 0.001);
        t.finish(&d, "r", 0, 0.0, 0.020); // slow → always retained
        let finished = t.finished();
        assert_eq!(finished.len(), 3);
        assert!(finished.iter().any(|tr| tr.trace_id == d.trace_id && tr.tail_kept));
        assert!(!finished.iter().any(|tr| tr.trace_id == b.trace_id));
        let stats = t.stats();
        assert_eq!(stats.started, 4);
        assert_eq!(stats.kept_head, 2);
        assert_eq!(stats.kept_tail, 1);
        assert_eq!(stats.discarded, 1);
    }

    #[test]
    fn sample_every_zero_is_tail_only() {
        let t = tracer_with(0, 0.0);
        let a = t.begin();
        assert!(!a.sampled);
        t.finish(&a, "r", 0, 0.0, 0.0);
        // Threshold 0: everything counts as tail.
        assert_eq!(t.finished().len(), 1);
        assert!(t.finished()[0].tail_kept);
    }

    #[test]
    fn finished_ring_evicts_and_counts() {
        let t = tracer_with(1, 1e9);
        for _ in 0..10 {
            let root = t.begin();
            t.finish(&root, "r", 0, 0.0, 0.0);
        }
        assert_eq!(t.finished().len(), 8);
        assert_eq!(t.stats().evicted, 2);
    }

    #[test]
    fn chrome_export_and_slow_log_shape() {
        let t = tracer_with(0, 0.0); // tail-keep everything
        let root = t.begin();
        t.leaf(&root, "gather", 2, Some(1), 0.001, 0.002);
        t.finish(&root, "coordinate", 2, 0.0, 0.004);
        let chrome = t.to_chrome_json();
        assert!(chrome.starts_with('{') && chrome.ends_with('}'));
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"name\":\"gather\""));
        assert!(chrome.contains("\"shard\":1"));
        assert!(chrome.contains(&format!("{:016x}", root.trace_id)));
        let slow = t.slow_query_log();
        assert!(slow.contains("slow_query"));
        assert!(slow.contains("root=coordinate"));
        assert!(render_trace(&t.finished()[0]).contains("gather"));
    }

    #[test]
    fn scope_propagates_and_restores() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall_tracer();
        assert!(trace_current().is_none());
        let t = install_tracer_with(TraceConfig::default());
        let root = t.begin();
        {
            let _scope = TraceScope::enter(root);
            assert_eq!(trace_current().map(|c| c.trace_id), Some(root.trace_id));
            let inner = t.child(&root);
            {
                let _nested = TraceScope::enter(inner);
                assert_eq!(trace_current().map(|c| c.span_id), Some(inner.span_id));
            }
            assert_eq!(trace_current().map(|c| c.span_id), Some(root.span_id));
        }
        assert!(trace_current().is_none());
        uninstall_tracer();
        assert!(!tracing_enabled());
    }

    #[test]
    fn remote_context_reattaches_across_the_wire() {
        let t = tracer_with(1, 1e9);
        let root = t.begin();
        // Simulate the coordinator side: the envelope carried
        // (trace_id, span_id, sampled).
        let remote = TraceContext::remote(root.trace_id, root.span_id, root.sampled);
        let coord = t.child(&remote);
        t.record(&coord, "coordinate", 1, None, 0.0, 0.002);
        t.finish(&root, "client_search", 0, 0.0, 0.003);
        let tr = &t.finished()[0];
        assert!(tr.well_parented());
        let c = tr.spans.iter().find(|s| s.name == "coordinate").unwrap();
        assert_eq!(c.parent_id, root.span_id);
        // Bounded per-trace dump names the trace.
        assert!(t.spans_for(root.trace_id).len() == 2);
        assert!(t.spans_for(9999).is_empty());
    }

    #[test]
    fn span_budget_bounds_memory() {
        let t = tracer_with(1, 1e9);
        let root = t.begin();
        for _ in 0..(MAX_SPANS_PER_TRACE + 10) {
            t.leaf(&root, "x", 0, None, 0.0, 0.0);
        }
        assert_eq!(t.stats().dropped_spans, 10);
        t.finish(&root, "r", 0, 0.0, 0.0);
        assert_eq!(t.finished()[0].spans.len(), MAX_SPANS_PER_TRACE + 1);
    }
}
